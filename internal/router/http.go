package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ajaxcrawl/internal/admission"
	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/query"
	"ajaxcrawl/internal/serve"
)

// HeaderShards reports fan-out completeness as "ok/total", e.g. "3/4"
// on a degraded answer with one shard down. It is always set, so "4/4"
// positively asserts a complete answer.
const HeaderShards = "X-Ajaxserve-Shards"

// HeaderHedges reports how many hedged attempts this query fired.
const HeaderHedges = "X-Ajaxserve-Hedges"

// ServerConfig parameterizes the router's HTTP layer.
type ServerConfig struct {
	// DefaultK is the result count when ?k= is absent (default 10).
	DefaultK int
	// MaxK caps ?k= (default 100).
	MaxK int
	// MaxInflight is the admission limiter's hard ceiling on
	// concurrently routed queries; excess requests queue (when
	// AdmissionQueue > 0) or are shed with 429 (0 = unlimited).
	MaxInflight int
	// AdmissionMin is the adaptive limit's floor (default 1).
	AdmissionMin int
	// AdmissionQueue bounds the admission wait queue (0 = no queue:
	// shed immediately at the limit).
	AdmissionQueue int
	// AdmissionTarget is the CoDel-style sojourn bound for queued
	// requests (0 = the admission package default, 50ms).
	AdmissionTarget time.Duration
	// QueryTimeout is the per-request deadline (0 = none). It also
	// seeds the deadline budget propagated to every shard call (clamped
	// to any budget the caller itself forwarded). The per-shard
	// deadline lives in the Router's Config.ShardTimeout.
	QueryTimeout time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.DefaultK <= 0 {
		c.DefaultK = 10
	}
	if c.MaxK <= 0 {
		c.MaxK = 100
	}
	return c
}

// Server is the router's HTTP front end: /search with the same request
// and body contract as ajaxserve (so clients cannot tell a router from
// a single snapshot server by the bytes — the differential battery pins
// this), plus fan-out metadata in response headers.
type Server struct {
	rt      *Router
	cfg     ServerConfig
	tel     *obs.Telemetry
	limiter *admission.Limiter
}

// NewServer wraps rt in the HTTP layer. tel may be nil.
func NewServer(rt *Router, cfg ServerConfig, tel *obs.Telemetry) *Server {
	cfg = cfg.withDefaults()
	s := &Server{rt: rt, cfg: cfg, tel: tel}
	if cfg.MaxInflight > 0 {
		s.limiter = admission.New(admission.Config{
			Initial:     cfg.MaxInflight,
			Min:         cfg.AdmissionMin,
			Max:         cfg.MaxInflight,
			Queue:       cfg.AdmissionQueue,
			QueueTarget: cfg.AdmissionTarget,
			Clock:       rt.clock,
			Tel:         tel,
		})
	}
	return s
}

// Router exposes the wrapped Router.
func (s *Server) Router() *Router { return s.rt }

// Limiter exposes the admission limiter (nil when MaxInflight is 0).
func (s *Server) Limiter() *admission.Limiter { return s.limiter }

// Routes mounts the routing endpoints on mux: /search and /healthz.
func (s *Server) Routes(mux *http.ServeMux) {
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/healthz", s.handleHealth)
}

// Handler returns the routing endpoints wrapped in the obs request
// middleware, backed by this server's telemetry registry.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Routes(mux)
	return obs.InstrumentHandler(s.tel.Registry(), mux)
}

// searchResponse mirrors ajaxserve's /search body field-for-field —
// the two must marshal identically, because the sharded fleet promises
// byte-identical answers to the single-snapshot server. Fan-out
// metadata (shard completeness, hedges) rides on headers, never in the
// body, for the same reason.
type searchResponse struct {
	Query   string         `json:"query"`
	K       int            `json:"k"`
	Count   int            `json:"count"`
	Results []searchResult `json:"results"`
}

type searchResult struct {
	URL     string  `json:"url"`
	State   int     `json:"state"`
	Score   float64 `json:"score"`
	Snippet string  `json:"snippet,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// admit applies the router's load-shedding gate (nil-token when the
// limiter is disabled; exactly one of Release or Cancel must follow).
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (*admission.Token, bool) {
	if s.limiter == nil {
		return nil, true
	}
	tok, err := s.limiter.Acquire(r.Context())
	if err == nil {
		return tok, true
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "deadline exceeded before routing"})
		return nil, false
	}
	s.tel.Counter("router.shed").Inc()
	w.Header().Set("Retry-After", strconv.Itoa(s.limiter.RetryAfterSeconds()))
	writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "router saturated, retry later"})
	return nil, false
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	tel := s.tel
	clock := s.rt.clock
	arrival := clock.Now()

	// The effective budget is this router's own deadline clamped to
	// whatever budget an upstream tier already propagated.
	budget := s.cfg.QueryTimeout
	if h := r.Header.Get(serve.HeaderBudget); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			if in := time.Duration(ms) * time.Millisecond; budget == 0 || in < budget {
				budget = in
			}
		}
	}
	if budget > 0 && budget <= s.rt.cfg.BudgetFloor {
		tel.Counter("router.budget_rejected").Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "deadline budget below floor"})
		return
	}

	tok, ok := s.admit(w, r)
	if !ok {
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		tok.Cancel()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing q parameter"})
		return
	}
	k := s.cfg.DefaultK
	if kv := r.URL.Query().Get("k"); kv != "" {
		parsed, err := strconv.Atoi(kv)
		if err != nil || parsed <= 0 {
			tok.Cancel()
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "k must be a positive integer"})
			return
		}
		k = parsed
		if k > s.cfg.MaxK {
			k = s.cfg.MaxK
		}
	}
	defer tok.Release()

	ctx := obs.With(r.Context(), tel)
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	if budget > 0 {
		// Queue time already spent the caller's budget; the deadline is
		// anchored at arrival, and every shard call clamps to what is
		// left of it at launch time.
		ctx = WithBudget(ctx, arrival.Add(budget), clock)
	}

	m, err := s.rt.Search(ctx, q, k)
	if err != nil {
		// The fleet could not produce an answer (no shard responded, or
		// a shard failed with partial results disabled): the router is
		// a gateway and says so.
		if m != nil {
			w.Header().Set(HeaderShards, fmt.Sprintf("%d/%d", m.ShardsOK, m.ShardsTotal))
		}
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: err.Error()})
		return
	}
	resp := searchResponse{
		Query:   query.QueryString(query.Parse(q)),
		K:       k,
		Count:   len(m.Results),
		Results: make([]searchResult, 0, len(m.Results)),
	}
	for _, r := range m.Results {
		resp.Results = append(resp.Results, searchResult{
			URL:     r.URL,
			State:   int(r.State),
			Score:   r.Score,
			Snippet: r.Snippet,
		})
	}
	w.Header().Set(serve.HeaderGeneration, strconv.FormatInt(m.Gen, 10))
	w.Header().Set(serve.HeaderDocs, strconv.Itoa(m.Docs))
	w.Header().Set(serve.HeaderStates, strconv.Itoa(m.States))
	w.Header().Set(HeaderShards, fmt.Sprintf("%d/%d", m.ShardsOK, m.ShardsTotal))
	w.Header().Set(HeaderHedges, strconv.Itoa(m.Hedges))
	writeJSON(w, http.StatusOK, resp)
}

// healthResponse is the router's /healthz body. Healthy reports the
// per-shard non-quarantined replica counts — live state, not static
// topology — so a load balancer in front of several routers can drain
// one whose fleet view has a hole.
type healthResponse struct {
	Status   string `json:"status"`
	Shards   int    `json:"shards"`
	Replicas []int  `json:"replicas"`
	Healthy  []int  `json:"healthy"`
	Partial  bool   `json:"partial"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	reps := make([]int, s.rt.NumShards())
	healthy := make([]int, s.rt.NumShards())
	status, code := "ok", http.StatusOK
	for i := range reps {
		reps[i] = s.rt.Replicas(i)
		healthy[i] = s.rt.HealthyReplicas(i)
		if healthy[i] == 0 {
			// A shard with no healthy replica cannot answer complete
			// queries: this router is degraded, say so with a 503.
			status, code = "degraded", http.StatusServiceUnavailable
		}
	}
	writeJSON(w, code, healthResponse{
		Status:   status,
		Shards:   s.rt.NumShards(),
		Replicas: reps,
		Healthy:  healthy,
		Partial:  s.rt.cfg.Partial,
	})
}
