package router

import (
	"context"
	"math"
	"strings"
	"testing"

	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/query"
)

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty topology")
	}
	if _, err := New(Config{Shards: [][]Backend{{}}}); err == nil {
		t.Fatal("New accepted a shard with no replicas")
	}
	if _, err := New(Config{Shards: [][]Backend{{nil}}}); err == nil {
		t.Fatal("New accepted a nil replica")
	}
	if _, err := New(Config{Shards: [][]Backend{{&staticBackend{}}}, HedgeQuantile: 1.5}); err == nil {
		t.Fatal("New accepted HedgeQuantile > 1")
	}
	r, err := New(Config{Shards: [][]Backend{
		{&staticBackend{}, &staticBackend{}},
		{&staticBackend{}},
	}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := r.NumShards(); got != 2 {
		t.Fatalf("NumShards = %d, want 2", got)
	}
	if got := r.Replicas(0); got != 2 {
		t.Fatalf("Replicas(0) = %d, want 2", got)
	}
}

// TestMergeGlobalIDF pins the eq. 6.1 arithmetic: idf must come from the
// SUMMED df and state counts, not any single shard's — the whole point
// of shipping df vectors instead of scores.
func TestMergeGlobalIDF(t *testing.T) {
	terms := []string{"video"}
	w := query.DefaultWeights
	// Shard 0: 10 states, df=1; shard 1: 30 states, df=3.
	// Global idf = ln(40/4), which no single shard would compute.
	r0 := canned(terms, 10, cand("http://a/1", 0, 0.5, 2))
	r1 := canned(terms, 30,
		cand("http://b/1", 0, 0.25, 1),
		cand("http://b/2", 1, 0.25, 1),
		cand("http://b/3", 2, 0.25, 1),
	)
	got, dups := mergeCandidates(terms, w, []*query.ShardResult{r0, r1}, 0)
	if dups != 0 {
		t.Fatalf("dups = %d, want 0", dups)
	}
	if len(got) != 4 {
		t.Fatalf("got %d results, want 4", len(got))
	}
	idf := math.Log(40.0 / 4.0)
	wantTop := 0.5 + w.TFIDF*2*idf
	if got[0].URL != "http://a/1" || got[0].Score != wantTop {
		t.Fatalf("top = %q score %v, want http://a/1 score %v", got[0].URL, got[0].Score, wantTop)
	}
	wantRest := 0.25 + w.TFIDF*1*idf
	for _, r := range got[1:] {
		if r.Score != wantRest {
			t.Fatalf("result %q score %v, want %v", r.URL, r.Score, wantRest)
		}
	}
}

// TestMergeTieBreakOrder pins the deterministic total order: score desc,
// then URL asc, then state asc.
func TestMergeTieBreakOrder(t *testing.T) {
	terms := []string{"x"}
	// All zero TFs → score is just base; craft ties on purpose.
	r0 := canned(terms, 5,
		cand("http://b", 2, 1.0, 0),
		cand("http://a", 1, 1.0, 0),
	)
	r1 := canned(terms, 5,
		cand("http://a", 0, 1.0, 0),
		cand("http://c", 0, 2.0, 0),
	)
	got, _ := mergeCandidates(terms, query.DefaultWeights, []*query.ShardResult{r0, r1}, 0)
	want := []string{"http://c#0", "http://a#0", "http://a#1", "http://b#2"}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i, r := range got {
		if resultKey(r) != want[i] {
			t.Fatalf("rank %d = %s, want %s", i, resultKey(r), want[i])
		}
	}
}

func TestMergeDeduplicatesOverlap(t *testing.T) {
	terms := []string{"x"}
	r0 := canned(terms, 5, cand("http://a", 0, 1.0, 1))
	r1 := canned(terms, 5, cand("http://a", 0, 9.0, 1), cand("http://b", 0, 0.5, 1))
	got, dups := mergeCandidates(terms, query.DefaultWeights, []*query.ShardResult{r0, r1}, 0)
	if dups != 1 {
		t.Fatalf("dups = %d, want 1", dups)
	}
	if len(got) != 2 {
		t.Fatalf("got %d results, want 2", len(got))
	}
	seen := map[string]bool{}
	for _, r := range got {
		if seen[resultKey(r)] {
			t.Fatalf("duplicate %s in merged results", resultKey(r))
		}
		seen[resultKey(r)] = true
	}
}

func TestMergeTruncatesToK(t *testing.T) {
	terms := []string{"x"}
	r0 := canned(terms, 5,
		cand("http://a", 0, 3, 0), cand("http://b", 0, 2, 0), cand("http://c", 0, 1, 0))
	got, _ := mergeCandidates(terms, query.DefaultWeights, []*query.ShardResult{r0}, 2)
	if len(got) != 2 || got[0].URL != "http://a" || got[1].URL != "http://b" {
		t.Fatalf("top-2 = %+v", got)
	}
}

func TestMergeSkipsNilAndMisalignedDefensively(t *testing.T) {
	terms := []string{"x", "y"}
	bad := canned(terms, 5)
	bad.Candidates = append(bad.Candidates, query.ShardCandidate{URL: "http://evil", TFs: []float64{1}})
	got, _ := mergeCandidates(terms, query.DefaultWeights, []*query.ShardResult{nil, bad}, 0)
	if len(got) != 0 {
		t.Fatalf("misaligned candidate entered the merge: %+v", got)
	}
}

func TestSearchEmptyQueryIsVacuouslyComplete(t *testing.T) {
	b := &staticBackend{res: canned([]string{"x"}, 1)}
	r, err := New(Config{Shards: [][]Backend{{b}, {b}}})
	if err != nil {
		t.Fatal(err)
	}
	m := mustSearch(t, r, context.Background(), "...", 10)
	if m.ShardsOK != 2 || m.ShardsTotal != 2 || len(m.Results) != 0 {
		t.Fatalf("empty query merged = %+v", m)
	}
	if b.callCount() != 0 {
		t.Fatalf("empty query hit backends %d times", b.callCount())
	}
}

func TestSearchPartialDisabledFailsOnShardError(t *testing.T) {
	terms := []string{"video"}
	good := &staticBackend{res: canned(terms, 5, cand("http://a", 0, 1, 1))}
	bad := &staticBackend{err: errReplicaDown}

	r, err := New(Config{Shards: [][]Backend{{good}, {bad}}, Partial: false})
	if err != nil {
		t.Fatal(err)
	}
	tel := obs.New(nil, nil)
	ctx := obs.With(context.Background(), tel)
	m, err := r.Search(ctx, "video", 10)
	if err == nil {
		t.Fatal("partial-disabled search succeeded with a dead shard")
	}
	if m == nil || m.ShardsOK != 1 || m.ShardsTotal != 2 {
		t.Fatalf("merged metadata = %+v", m)
	}
	if len(m.FailedShards) != 1 || m.FailedShards[0] != 1 {
		t.Fatalf("FailedShards = %v, want [1]", m.FailedShards)
	}
	if got := tel.Counter("router.fanout.partial").Value(); got != 1 {
		t.Fatalf("router.fanout.partial = %d, want 1", got)
	}
}

func TestSearchPartialToleratesShardError(t *testing.T) {
	terms := []string{"video"}
	good := &staticBackend{res: canned(terms, 5, cand("http://a", 0, 1, 1))}
	bad := &staticBackend{err: errReplicaDown}

	r, err := New(Config{Shards: [][]Backend{{good}, {bad}}, Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	tel := obs.New(nil, nil)
	ctx := obs.With(context.Background(), tel)
	m := mustSearch(t, r, ctx, "video", 10)
	if m.ShardsOK != 1 || m.ShardsTotal != 2 {
		t.Fatalf("shards = %d/%d, want 1/2", m.ShardsOK, m.ShardsTotal)
	}
	if len(m.Results) != 1 || m.Results[0].URL != "http://a" {
		t.Fatalf("results = %+v", m.Results)
	}
	if got := tel.Counter("router.fanout.partial").Value(); got != 1 {
		t.Fatalf("router.fanout.partial = %d, want 1", got)
	}
	if got := tel.Counter("router.fanout.shard_errors").Value(); got != 1 {
		t.Fatalf("router.fanout.shard_errors = %d, want 1", got)
	}
}

func TestSearchNoShardAnswered(t *testing.T) {
	bad := &staticBackend{err: errReplicaDown}
	r, err := New(Config{Shards: [][]Backend{{bad}, {bad}}, Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Search(context.Background(), "video", 10)
	if err == nil {
		t.Fatal("search succeeded with every shard down")
	}
	if m == nil || m.ShardsOK != 0 {
		t.Fatalf("merged = %+v", m)
	}
	if !strings.Contains(err.Error(), "no shard answered") {
		t.Fatalf("err = %v", err)
	}
}

// TestSearchFailoverOnInvalidResponse: a replica that answers garbage
// (vector misaligned with the query) must be treated exactly like a dead
// replica — the router fails over to the sibling and the query succeeds.
func TestSearchFailoverOnInvalidResponse(t *testing.T) {
	terms := []string{"video"}
	garbage := canned([]string{"video", "extra"}, 5)
	bad := &staticBackend{res: garbage}
	good := &staticBackend{res: canned(terms, 5, cand("http://a", 0, 1, 1))}

	clock := newTestClock()
	g := &scriptedGroup{clock: clock}
	g.script = []func(ctx context.Context) (*query.ShardResult, error){
		func(ctx context.Context) (*query.ShardResult, error) { return bad.ShardSearch(ctx, "") },
		func(ctx context.Context) (*query.ShardResult, error) { return good.ShardSearch(ctx, "") },
	}
	r, err := New(Config{Shards: [][]Backend{g.backends(2)}, Clock: clock, Partial: false})
	if err != nil {
		t.Fatal(err)
	}
	tel := obs.New(nil, nil)
	ctx := obs.With(context.Background(), tel)
	m := mustSearch(t, r, ctx, "video", 10)
	if m.ShardsOK != 1 || len(m.Results) != 1 || m.Results[0].URL != "http://a" {
		t.Fatalf("merged = %+v", m)
	}
	if got := tel.Counter("router.fanout.shard_errors").Value(); got != 1 {
		t.Fatalf("router.fanout.shard_errors = %d, want 1", got)
	}
	if got := len(g.arrivalTimes()); got != 2 {
		t.Fatalf("replica arrivals = %d, want 2 (primary + failover)", got)
	}
	if m.Hedges != 0 {
		t.Fatalf("failover counted as hedge: %d", m.Hedges)
	}
}

// TestSearchExhaustedReplicasReportsLastError: when every replica of a
// shard errors, the shard fails with the last attempt's error.
func TestSearchExhaustedReplicasReportsLastError(t *testing.T) {
	bad := &staticBackend{err: errReplicaDown}
	r, err := New(Config{Shards: [][]Backend{{bad, bad, bad}}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Search(context.Background(), "video", 10)
	if err == nil {
		t.Fatal("search succeeded with all replicas down")
	}
	if !strings.Contains(err.Error(), "replica down") {
		t.Fatalf("err = %v", err)
	}
	if bad.callCount() != 3 {
		t.Fatalf("attempts = %d, want 3 (every replica tried once)", bad.callCount())
	}
}

func TestCheckShardResultRejections(t *testing.T) {
	terms := []string{"a", "b"}
	ok := canned(terms, 5, cand("http://x", 0, 1, 1, 0))
	if err := checkShardResult(ok, terms); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*query.ShardResult)
	}{
		{"term mismatch", func(r *query.ShardResult) { r.Terms[1] = "c" }},
		{"df misaligned", func(r *query.ShardResult) { r.DF = r.DF[:1] }},
		{"negative df", func(r *query.ShardResult) { r.DF[0] = -1 }},
		{"negative states", func(r *query.ShardResult) { r.TotalStates = -1 }},
		{"empty url", func(r *query.ShardResult) { r.Candidates[0].URL = "" }},
		{"huge url", func(r *query.ShardResult) { r.Candidates[0].URL = strings.Repeat("u", 9<<10) }},
		{"negative state", func(r *query.ShardResult) { r.Candidates[0].State = -2 }},
		{"tf misaligned", func(r *query.ShardResult) { r.Candidates[0].TFs = []float64{1} }},
		{"nan base", func(r *query.ShardResult) { r.Candidates[0].Base = math.NaN() }},
		{"inf tf", func(r *query.ShardResult) { r.Candidates[0].TFs[0] = math.Inf(1) }},
		{"negative tf", func(r *query.ShardResult) { r.Candidates[0].TFs[0] = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := canned(terms, 5, cand("http://x", 0, 1, 1, 0))
			tc.mutate(res)
			if err := checkShardResult(res, terms); err == nil {
				t.Fatalf("%s passed validation", tc.name)
			}
		})
	}
	if err := checkShardResult(nil, terms); err == nil {
		t.Fatal("nil result passed validation")
	}
}
