package router

import (
	"context"
	"time"

	"ajaxcrawl/internal/obs"
)

// Self-healing replica management. Every attempt outcome folds into a
// per-replica failure EWMA (success 0, error/timeout 1, "the hedge had
// to fire" 0.5); the EWMA biases the P2C pick away from sick replicas
// long before ejection, and crossing EjectThreshold quarantines the
// replica outright — queries stop discovering a dead backend the hard
// way on every first attempt. Quarantined replicas re-enter through
// probation: once their backoff elapses, background /healthz probes
// (ProbeSweep / HealthLoop, on the injectable clock) must succeed
// ProbationProbes times in a row; a failed probe doubles the backoff
// up to QuarantineMax. Everything is visible in the router.replica.*
// metrics family, and a wholly quarantined group is still attempted as
// a last resort — guessing beats refusing when nothing healthy is left.

// healthBeta is the failure-EWMA smoothing factor: one failure moves a
// healthy replica to 0.3, five in a row cross the default threshold.
const healthBeta = 0.3

// Attempt-outcome weights for record.
const (
	failHard  = 1.0 // error or shard timeout
	failHedge = 0.5 // slow enough that the hedge fired against it
)

// Prober is implemented by backends that can answer an active health
// probe. Backends without one (in-process shards) are assumed healthy
// once their quarantine backoff elapses.
type Prober interface {
	// Probe checks the backend's health endpoint; nil means healthy.
	Probe(ctx context.Context) error
}

// record folds one attempt outcome into rep's failure EWMA and ejects
// the replica into quarantine when it crosses the threshold.
func (r *Router) record(rep *replica, fail float64, tel *obs.Telemetry) {
	r.mu.Lock()
	rep.health = (1-healthBeta)*rep.health + healthBeta*fail
	eject := !rep.quarantined && rep.health >= r.cfg.EjectThreshold
	if eject {
		rep.quarantined = true
		rep.probeOK = 0
		if rep.backoff <= 0 {
			rep.backoff = r.cfg.QuarantineBase
		} else if rep.backoff < r.cfg.QuarantineMax {
			rep.backoff *= 2
			if rep.backoff > r.cfg.QuarantineMax {
				rep.backoff = r.cfg.QuarantineMax
			}
		}
		rep.quarantineUntil = r.clock.Now().Add(rep.backoff)
	}
	quarantined := r.quarantinedLocked()
	r.mu.Unlock()
	if eject {
		tel.Counter("router.replica.ejected").Inc()
		tel.Gauge("router.replica.quarantined").Set(int64(quarantined))
	}
}

// quarantinedLocked counts quarantined replicas fleet-wide.
func (r *Router) quarantinedLocked() int {
	n := 0
	for _, g := range r.groups {
		for _, rep := range g.replicas {
			if rep.quarantined {
				n++
			}
		}
	}
	return n
}

// HealthyReplicas returns shard i's non-quarantined replica count.
func (r *Router) HealthyReplicas(i int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, rep := range r.groups[i].replicas {
		if !rep.quarantined {
			n++
		}
	}
	return n
}

// ProbeSweep probes every quarantined replica whose backoff has
// elapsed. A successful probe advances probation; ProbationProbes
// consecutive successes readmit the replica with a clean health score.
// A failed probe restarts probation and doubles the backoff. Telemetry
// rides the context (obs.With).
func (r *Router) ProbeSweep(ctx context.Context) {
	tel := obs.From(ctx)
	now := r.clock.Now()
	type cand struct {
		rep   *replica
		shard int
	}
	var due []cand
	r.mu.Lock()
	for si, g := range r.groups {
		for _, rep := range g.replicas {
			if rep.quarantined && !now.Before(rep.quarantineUntil) {
				due = append(due, cand{rep: rep, shard: si})
			}
		}
	}
	r.mu.Unlock()

	for _, c := range due {
		tel.Counter("router.replica.probes").Inc()
		err := probeBackend(ctx, c.rep.backend)
		r.mu.Lock()
		if err != nil {
			c.rep.probeOK = 0
			if c.rep.backoff < r.cfg.QuarantineMax {
				c.rep.backoff *= 2
				if c.rep.backoff > r.cfg.QuarantineMax {
					c.rep.backoff = r.cfg.QuarantineMax
				}
			}
			c.rep.quarantineUntil = r.clock.Now().Add(c.rep.backoff)
			r.mu.Unlock()
			tel.Counter("router.replica.probe_failures").Inc()
			continue
		}
		c.rep.probeOK++
		readmit := c.rep.probeOK >= r.cfg.ProbationProbes
		if readmit {
			c.rep.quarantined = false
			c.rep.health = 0
			c.rep.backoff = 0
			c.rep.probeOK = 0
		}
		quarantined := r.quarantinedLocked()
		r.mu.Unlock()
		if readmit {
			tel.Counter("router.replica.readmitted").Inc()
			tel.Gauge("router.replica.quarantined").Set(int64(quarantined))
		}
	}
}

// HealthLoop runs ProbeSweep every interval on the router's clock until
// ctx ends — the daemon's background recovery path.
func (r *Router) HealthLoop(ctx context.Context, interval time.Duration) {
	for {
		if r.clock.Sleep(ctx, interval) != nil {
			return
		}
		r.ProbeSweep(ctx)
	}
}

func probeBackend(ctx context.Context, b Backend) error {
	if p, ok := b.(Prober); ok {
		return p.Probe(ctx)
	}
	return nil
}
