package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"ajaxcrawl/internal/query"
	"ajaxcrawl/internal/serve"
)

// Backend answers the shard half of a distributed query. The two
// implementations are an in-process query.Server (tests, benches,
// single-binary fleets) and an HTTP client speaking ajaxserve's
// /shard/search protocol (the real fleet).
type Backend interface {
	// ShardSearch evaluates q on the shard and returns its pre-idf
	// candidates plus local collection statistics. Implementations must
	// honor ctx: a canceled hedge loser should stop working promptly.
	ShardSearch(ctx context.Context, q string) (*query.ShardResult, error)
}

// LocalBackend serves a shard from an in-process query.Server.
type LocalBackend struct {
	QS *query.Server
}

// ShardSearch implements Backend.
func (b LocalBackend) ShardSearch(ctx context.Context, q string) (*query.ShardResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return b.QS.ShardSearch(ctx, q), nil
}

// Probe implements Prober: an in-process shard is healthy whenever the
// process is.
func (b LocalBackend) Probe(ctx context.Context) error { return ctx.Err() }

// DefaultMaxResponseBytes bounds one shard response body (32 MiB) —
// a shard that tries to stream more is failed, not buffered.
const DefaultMaxResponseBytes = 32 << 20

// HTTPBackend speaks the /shard/search protocol to a remote ajaxserve.
type HTTPBackend struct {
	// BaseURL is the shard server's root, e.g. "http://10.0.0.7:8090".
	BaseURL string
	// Client issues the requests (nil = http.DefaultClient). Cancel
	// deadlines ride the request context, so the client itself needs no
	// timeout.
	Client *http.Client
	// MaxResponseBytes caps the decoded body (0 = DefaultMaxResponseBytes).
	MaxResponseBytes int64
}

// ShardSearch implements Backend. When the context carries a deadline
// budget (WithBudget), the remainder is forwarded to the shard server
// as X-Ajaxserve-Budget-Ms — and a call whose budget is already under a
// millisecond fails fast without touching the network at all.
func (b *HTTPBackend) ShardSearch(ctx context.Context, q string) (*query.ShardResult, error) {
	u := b.BaseURL + "/shard/search?q=" + url.QueryEscape(q)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("router: %w", err)
	}
	if rem, ok := BudgetRemaining(ctx); ok {
		if rem < time.Millisecond {
			return nil, ErrBudgetExhausted
		}
		req.Header.Set(serve.HeaderBudget, strconv.FormatInt(rem.Milliseconds(), 10))
	}
	client := b.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Read a bounded sliver of the error body for the message; a
		// saturated replica's 429 should surface as text, not bytes.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("router: shard %s: status %d: %s", b.BaseURL, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return DecodeShardResult(resp.Body, b.MaxResponseBytes)
}

// Probe implements Prober: GET /healthz on the shard server. Any
// non-200 answer (or transport error) keeps the replica quarantined.
func (b *HTTPBackend) Probe(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.BaseURL+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("router: %w", err)
	}
	client := b.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("router: probe %s: status %d", b.BaseURL, resp.StatusCode)
	}
	return nil
}

// DecodeShardResult reads one shard response body (bounded by maxBytes;
// 0 = DefaultMaxResponseBytes) and decodes it defensively: the body is
// network input from a machine that may be compromised or simply wrong,
// so the size is capped before buffering, unknown fields are tolerated
// (forward compatibility), decoding panics are converted to errors, and
// the caller is expected to run checkShardResult against the query
// before the merge. FuzzRouterMergeResponse hammers this path.
func DecodeShardResult(r io.Reader, maxBytes int64) (res *query.ShardResult, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("router: shard response decode panicked: %v", p)
		}
	}()
	if maxBytes <= 0 {
		maxBytes = DefaultMaxResponseBytes
	}
	// Read one byte past the cap so truncation is distinguishable from
	// an exactly-cap-sized body.
	b, err := io.ReadAll(io.LimitReader(r, maxBytes+1))
	if err != nil {
		return nil, fmt.Errorf("router: shard response read: %w", err)
	}
	if int64(len(b)) > maxBytes {
		return nil, fmt.Errorf("router: shard response exceeds %d bytes", maxBytes)
	}
	var sr query.ShardResult
	if err := json.Unmarshal(b, &sr); err != nil {
		return nil, fmt.Errorf("router: shard response decode: %w", err)
	}
	return &sr, nil
}
