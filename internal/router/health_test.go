package router

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/query"
)

// flipBackend is a replica whose behavior flips between healthy,
// erroring, and hanging — the chaos tests' flapping replica. It also
// implements Prober, failing probes while unhealthy.
type flipBackend struct {
	res *query.ShardResult

	mu     sync.Mutex
	mode   string // "ok", "err", "hang"
	calls  int
	probes int
}

func (b *flipBackend) set(mode string) {
	b.mu.Lock()
	b.mode = mode
	b.mu.Unlock()
}

func (b *flipBackend) ShardSearch(ctx context.Context, q string) (*query.ShardResult, error) {
	b.mu.Lock()
	b.calls++
	mode := b.mode
	b.mu.Unlock()
	switch mode {
	case "err":
		return nil, errReplicaDown
	case "hang":
		<-ctx.Done()
		return nil, ctx.Err()
	}
	cp := *b.res
	return &cp, nil
}

func (b *flipBackend) Probe(ctx context.Context) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probes++
	if b.mode != "ok" {
		return errReplicaDown
	}
	return nil
}

func (b *flipBackend) callCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.calls
}

func (b *flipBackend) probeCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.probes
}

// TestBudgetExhaustedFastReject: a shard call whose propagated budget
// is already at the floor is rejected before any replica is contacted.
func TestBudgetExhaustedFastReject(t *testing.T) {
	clock := newTestClock()
	b := &staticBackend{res: canned([]string{"video"}, 5, cand("http://a", 0, 1, 1))}
	r, err := New(Config{Shards: [][]Backend{{b}}, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), obs.New(reg, nil))
	ctx = WithBudget(ctx, clock.Now().Add(time.Millisecond), clock) // below the 2ms floor

	_, err = r.Search(ctx, "video", 10)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if b.callCount() != 0 {
		t.Fatalf("budget-rejected query still reached a replica (%d calls)", b.callCount())
	}
	if got := reg.Counter("router.fanout.budget_rejected").Value(); got != 1 {
		t.Fatalf("budget_rejected = %d, want 1", got)
	}
}

// TestBudgetClampsShardDeadline is the short-budget regression test on
// the virtual clock: ShardTimeout is one second, but the caller's
// budget has only 100ms left — the shard deadline must be the clamped
// minimum, so advancing exactly 100ms times the stalled shard out. An
// unclamped router would still be waiting at +100ms.
func TestBudgetClampsShardDeadline(t *testing.T) {
	clock := newTestClock()
	sg := &scriptedGroup{clock: clock}
	sg.script = []func(ctx context.Context) (*query.ShardResult, error){blockUntilCanceled}
	r, err := New(Config{
		Shards:       [][]Backend{sg.backends(1)},
		ShardTimeout: time.Second,
		Clock:        clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := obs.With(context.Background(), obs.New(nil, nil))
	ctx = WithBudget(ctx, clock.Now().Add(100*time.Millisecond), clock)

	done := make(chan error, 1)
	go func() {
		_, err := r.Search(ctx, "video", 10)
		done <- err
	}()
	clock.awaitWaiters(t, 1) // the (clamped) shard deadline timer
	clock.Advance(100 * time.Millisecond)
	select {
	case err := <-done:
		if !errors.Is(err, ErrShardTimeout) {
			t.Fatalf("err = %v, want ErrShardTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shard deadline not clamped to the 100ms budget: still waiting at +100ms")
	}
}

// TestReplicaEjectionStopsFirstHitFailures: a dead replica is ejected
// into quarantine after crossing the health threshold, after which
// queries go straight to the healthy sibling — no more first-attempt
// failures — and probation probes readmit it once it recovers.
func TestReplicaEjectionStopsFirstHitFailures(t *testing.T) {
	terms := []string{"video"}
	res := canned(terms, 5, cand("http://a", 0, 1, 1))
	clock := newTestClock()
	flaky := &flipBackend{res: res, mode: "err"}
	healthy := &staticBackend{res: res}
	r, err := New(Config{
		Shards:          [][]Backend{{flaky, healthy}},
		Clock:           clock,
		EjectThreshold:  0.25, // one hard failure (EWMA 0.3) ejects
		QuarantineBase:  time.Second,
		ProbationProbes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), obs.New(reg, nil))

	// Query 1: the tie-break picks replica 0 (the dead one), it fails,
	// ejection triggers, and failover answers from the sibling.
	m := mustSearch(t, r, ctx, "video", 10)
	if m.ShardsOK != 1 {
		t.Fatalf("shards ok = %d", m.ShardsOK)
	}
	if got := reg.Counter("router.replica.ejected").Value(); got != 1 {
		t.Fatalf("ejected = %d, want 1", got)
	}
	if got := r.HealthyReplicas(0); got != 1 {
		t.Fatalf("healthy replicas = %d, want 1", got)
	}
	if got := reg.Gauge("router.replica.quarantined").Value(); got != 1 {
		t.Fatalf("quarantined gauge = %d, want 1", got)
	}
	calls := flaky.callCount()

	// Quarantine prevents repeated first-hit failures: later queries
	// never touch the dead replica.
	for i := 0; i < 5; i++ {
		mustSearch(t, r, ctx, "video", 10)
	}
	if got := flaky.callCount(); got != calls {
		t.Fatalf("quarantined replica still attempted: %d calls, want %d", got, calls)
	}

	// Recovery: before the backoff elapses, no probe fires.
	flaky.set("ok")
	r.ProbeSweep(ctx)
	if flaky.probeCount() != 0 {
		t.Fatalf("probe fired before the quarantine elapsed (%d probes)", flaky.probeCount())
	}
	// Probation needs two consecutive successes.
	clock.Advance(time.Second)
	r.ProbeSweep(ctx)
	if got := r.HealthyReplicas(0); got != 1 {
		t.Fatalf("readmitted after one probe, want probation of two (healthy=%d)", got)
	}
	r.ProbeSweep(ctx)
	if got := r.HealthyReplicas(0); got != 2 {
		t.Fatalf("healthy replicas after probation = %d, want 2", got)
	}
	if got := reg.Counter("router.replica.readmitted").Value(); got != 1 {
		t.Fatalf("readmitted = %d, want 1", got)
	}
	if got := reg.Gauge("router.replica.quarantined").Value(); got != 0 {
		t.Fatalf("quarantined gauge = %d, want 0", got)
	}

	// The readmitted replica serves again (clean health, tie-break
	// brings it back into rotation).
	mustSearch(t, r, ctx, "video", 10)
	if got := flaky.callCount(); got != calls+1 {
		t.Fatalf("readmitted replica not used: %d calls, want %d", got, calls+1)
	}
}

// TestProbeFailureDoublesBackoff: a failed probation probe restarts the
// quarantine with doubled backoff — a flapping replica is probed less
// and less often, not hammered.
func TestProbeFailureDoublesBackoff(t *testing.T) {
	terms := []string{"video"}
	res := canned(terms, 5, cand("http://a", 0, 1, 1))
	clock := newTestClock()
	flaky := &flipBackend{res: res, mode: "err"}
	healthy := &staticBackend{res: res}
	r, err := New(Config{
		Shards:          [][]Backend{{flaky, healthy}},
		Clock:           clock,
		EjectThreshold:  0.25,
		QuarantineBase:  time.Second,
		ProbationProbes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), obs.New(reg, nil))
	mustSearch(t, r, ctx, "video", 10) // ejects the dead replica

	clock.Advance(time.Second)
	r.ProbeSweep(ctx) // fails: backoff doubles to 2s
	if got := reg.Counter("router.replica.probe_failures").Value(); got != 1 {
		t.Fatalf("probe_failures = %d, want 1", got)
	}
	clock.Advance(time.Second)
	r.ProbeSweep(ctx) // only 1s into the 2s sentence: not due
	if got := flaky.probeCount(); got != 1 {
		t.Fatalf("probes = %d, want 1 (backoff not doubled)", got)
	}
	clock.Advance(time.Second)
	flaky.set("ok")
	r.ProbeSweep(ctx) // due again, succeeds, readmits
	if got := r.HealthyReplicas(0); got != 2 {
		t.Fatalf("healthy = %d, want 2", got)
	}
}

// TestFlappingReplicaBoundedHedges is the flapping chaos test: a
// replica hangs (every hit costs a hedge), recovers, then hangs again.
// Quarantine bounds the hedge storm — exactly the strikes needed to
// eject, twice — instead of one hedge per query forever.
func TestFlappingReplicaBoundedHedges(t *testing.T) {
	terms := []string{"video"}
	res := canned(terms, 5, cand("http://a", 0, 1, 1))
	clock := newTestClock()
	flaky := &flipBackend{res: res, mode: "hang"}
	healthy := &staticBackend{res: res}
	r, err := New(Config{
		Shards:          [][]Backend{{flaky, healthy}},
		Clock:           clock,
		HedgeAfter:      10 * time.Millisecond,
		ShardTimeout:    time.Second,
		EjectThreshold:  0.3, // three hedge strikes (0.5-weight EWMA) eject
		QuarantineBase:  time.Second,
		ProbationProbes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), obs.New(reg, nil))

	// Pin standing load on the healthy sibling: at low load the health
	// penalty alone steers every pick away from a suspect replica (no
	// strikes, no ejection — avoidance is enough). Ejection matters
	// under pressure, when the sibling's outstanding queue outweighs
	// the penalty and the sick replica keeps drawing traffic.
	r.groups[0].replicas[1].outstanding.Store(10)

	// run drives one query, advancing virtual time until it completes
	// (a hanging primary needs the hedge timer to fire).
	run := func() {
		t.Helper()
		done := make(chan error, 1)
		go func() {
			_, err := r.Search(ctx, "video", 10)
			done <- err
		}()
		for {
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("query failed: %v", err)
				}
				return
			case <-time.After(time.Millisecond):
				clock.Advance(10 * time.Millisecond)
			}
		}
	}

	// Phase 1: hanging. Hedge strikes accumulate 0.15 → 0.255 → 0.329:
	// the third query ejects the replica.
	for i := 0; i < 3; i++ {
		run()
	}
	if got := reg.Counter("router.replica.ejected").Value(); got != 1 {
		t.Fatalf("ejected = %d, want 1 after three hedged queries", got)
	}
	hedgesAfterEject := reg.Counter("router.fanout.hedges").Value()
	if hedgesAfterEject != 3 {
		t.Fatalf("hedges = %d, want 3 (one per pre-ejection query)", hedgesAfterEject)
	}
	flakyCalls := flaky.callCount()

	// Quarantined: queries go straight to the healthy replica — no new
	// hedges, no new hits on the hanging backend.
	for i := 0; i < 5; i++ {
		run()
	}
	if got := reg.Counter("router.fanout.hedges").Value(); got != hedgesAfterEject {
		t.Fatalf("hedge storm not bounded: %d hedges, want %d", got, hedgesAfterEject)
	}
	if got := flaky.callCount(); got != flakyCalls {
		t.Fatalf("quarantined replica still hit: %d calls, want %d", got, flakyCalls)
	}

	// Phase 2: recovery and readmission.
	flaky.set("ok")
	clock.Advance(time.Second)
	r.ProbeSweep(ctx)
	if got := r.HealthyReplicas(0); got != 2 {
		t.Fatalf("healthy after probe = %d, want 2", got)
	}
	run() // serves from the recovered replica without hedging
	if got := reg.Counter("router.fanout.hedges").Value(); got != hedgesAfterEject {
		t.Fatalf("recovered replica still hedged: %d", got)
	}

	// Phase 3: it dies again — same bounded ejection, one more cycle.
	flaky.set("hang")
	for i := 0; i < 3; i++ {
		run()
	}
	if got := reg.Counter("router.replica.ejected").Value(); got != 2 {
		t.Fatalf("second ejection missing: ejected = %d, want 2", got)
	}
	if got := reg.Counter("router.fanout.hedges").Value(); got > hedgesAfterEject+3 {
		t.Fatalf("flapping hedge storm unbounded: %d hedges total", got)
	}
}

// TestRouterHealthzDegraded: /healthz reports live per-shard healthy
// replica counts and degrades to 503 when any shard has none.
func TestRouterHealthzDegraded(t *testing.T) {
	terms := []string{"video"}
	res := canned(terms, 5, cand("http://a", 0, 1, 1))
	rt, err := New(Config{Shards: [][]Backend{
		{&staticBackend{res: res}, &staticBackend{res: res}},
		{&staticBackend{res: res}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rs := NewServer(rt, ServerConfig{}, obs.New(obs.NewRegistry(), nil))

	get := func() (int, string) {
		rec := httptest.NewRecorder()
		rs.handleHealth(rec, httptest.NewRequest("GET", "/healthz", nil))
		return rec.Code, rec.Body.String()
	}
	code, body := get()
	if code != 200 || !strings.Contains(body, `"healthy":[2,1]`) || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthy fleet: %d %s", code, body)
	}

	// Quarantine shard 1's only replica: the router must say degraded.
	rt.mu.Lock()
	rt.groups[1].replicas[0].quarantined = true
	rt.mu.Unlock()
	code, body = get()
	if code != 503 || !strings.Contains(body, `"healthy":[2,0]`) || !strings.Contains(body, `"status":"degraded"`) {
		t.Fatalf("degraded fleet: %d %s", code, body)
	}
}
