package router

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ajaxcrawl/internal/query"
)

// testClock is a manually advanced clock: Sleep blocks until Advance
// moves virtual time past the deadline (or the context ends). Unlike
// fetch.VirtualClock — whose sleeps auto-advance, which would fire the
// hedge and deadline timers instantly — this clock lets a test hold
// several concurrent timers and release exactly the one whose moment
// has come, so hedge schedules can be asserted to the exact virtual
// timestamp.
type testClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*clockWaiter
}

type clockWaiter struct {
	deadline time.Time
	ch       chan struct{}
}

func newTestClock() *testClock {
	return &testClock{now: time.Unix(0, 0)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	deadline := c.now.Add(d)
	if !deadline.After(c.now) {
		c.mu.Unlock()
		return ctx.Err()
	}
	w := &clockWaiter{deadline: deadline, ch: make(chan struct{})}
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()
	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		for i, o := range c.waiters {
			if o == w {
				c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
				break
			}
		}
		c.mu.Unlock()
		return ctx.Err()
	}
}

// Advance moves virtual time forward and wakes every timer whose
// deadline has passed.
func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var fire []*clockWaiter
	keep := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.deadline.After(c.now) {
			fire = append(fire, w)
		} else {
			keep = append(keep, w)
		}
	}
	c.waiters = keep
	c.mu.Unlock()
	for _, w := range fire {
		close(w.ch)
	}
}

func (c *testClock) waiterCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// awaitWaiters polls until exactly n timers are registered (and stay
// registered long enough to observe), so Advance releases precisely the
// timers the test means to release.
func (c *testClock) awaitWaiters(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.waiterCount() == n {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %d clock waiters (have %d)", n, c.waiterCount())
}

// arrival records when (in virtual time) a scripted group saw a call.
type arrival struct {
	replica int
	at      time.Time
}

// scriptedGroup scripts one shard's replicas by ARRIVAL ORDER, not
// replica identity: the first call runs script[0], the second script[1],
// and so on (the last script entry repeats). That makes tests
// independent of which replica the seeded P2C pick chooses first.
type scriptedGroup struct {
	clock interface{ Now() time.Time }

	mu       sync.Mutex
	arrivals []arrival
	script   []func(ctx context.Context) (*query.ShardResult, error)
}

func (g *scriptedGroup) replicaBackend(id int) Backend {
	return &scriptedReplica{g: g, id: id}
}

func (g *scriptedGroup) backends(n int) []Backend {
	out := make([]Backend, n)
	for i := range out {
		out[i] = g.replicaBackend(i)
	}
	return out
}

func (g *scriptedGroup) arrivalTimes() []arrival {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]arrival(nil), g.arrivals...)
}

type scriptedReplica struct {
	g  *scriptedGroup
	id int
}

func (r *scriptedReplica) ShardSearch(ctx context.Context, q string) (*query.ShardResult, error) {
	g := r.g
	g.mu.Lock()
	i := len(g.arrivals)
	g.arrivals = append(g.arrivals, arrival{replica: r.id, at: g.clock.Now()})
	if i >= len(g.script) {
		i = len(g.script) - 1
	}
	fn := g.script[i]
	g.mu.Unlock()
	return fn(ctx)
}

// blockUntilCanceled is a script step: the replica hangs until the
// router gives up on it.
func blockUntilCanceled(ctx context.Context) (*query.ShardResult, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// canned builds a well-formed ShardResult for terms with the given
// candidates; df counts how many candidates carry each term.
func canned(terms []string, states int, cands ...query.ShardCandidate) *query.ShardResult {
	res := &query.ShardResult{
		Terms:       append([]string(nil), terms...),
		TotalStates: states,
		DF:          make([]int, len(terms)),
		Gen:         1,
		Docs:        len(cands),
		States:      states,
		Candidates:  append([]query.ShardCandidate(nil), cands...),
	}
	for _, c := range cands {
		for i := range terms {
			if i < len(c.TFs) && c.TFs[i] > 0 {
				res.DF[i]++
			}
		}
	}
	return res
}

func cand(url string, state int, base float64, tfs ...float64) query.ShardCandidate {
	return query.ShardCandidate{URL: url, State: state, Base: base, TFs: tfs, Snippet: "[" + url + "]"}
}

// staticBackend always returns the same response.
type staticBackend struct {
	res *query.ShardResult
	err error

	mu    sync.Mutex
	calls int
}

func (b *staticBackend) ShardSearch(ctx context.Context, q string) (*query.ShardResult, error) {
	b.mu.Lock()
	b.calls++
	b.mu.Unlock()
	if b.err != nil {
		return nil, b.err
	}
	// Hand out a deep-enough copy: the merge may be concurrent with
	// other queries reading the same backend.
	cp := *b.res
	return &cp, b.err
}

func (b *staticBackend) callCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.calls
}

var errReplicaDown = errors.New("replica down")

// mustSearch fails the test on error.
func mustSearch(t *testing.T, r *Router, ctx context.Context, q string, k int) *Merged {
	t.Helper()
	m, err := r.Search(ctx, q, k)
	if err != nil {
		t.Fatalf("Search(%q): %v", q, err)
	}
	return m
}

// resultKey labels a result for duplicate checks.
func resultKey(r query.ResultWithSnippet) string {
	return fmt.Sprintf("%s#%d", r.URL, r.State)
}
