// Package router is the query fan-out tier of the sharded serving
// fleet (thesis ch. 6's query shipping, scaled out of one process): one
// router owns N shard groups, each a set of R interchangeable replicas
// serving the same index shard. A query fans out to every shard group,
// each shard returns pre-idf candidates plus its local collection
// statistics (query.ShardResult), and the router folds in the tf·idf
// component with the globally corrected idf of eq. 6.1 — summing df and
// state counts across shards — before merging to one deterministic
// global top-k (score desc, then URL asc, then state asc; identical to
// the single-snapshot ranking, which the differential test battery pins
// byte-for-byte).
//
// Robustness is first-class:
//
//   - Replica choice is power-of-two-choices on outstanding requests,
//     so a slow replica sheds load to its siblings instead of queueing.
//   - Hedged retries: when a shard's primary attempt is slower than the
//     hedge delay (a fixed duration, or an observed latency quantile),
//     one hedged attempt fires at another replica; the first valid
//     response wins and the loser is canceled.
//   - Per-shard deadlines ride the injectable fetch.Clock, so the whole
//     schedule is testable in virtual time.
//   - Partial results: with Config.Partial set, a shard that errors or
//     times out degrades the answer (and says so in response metadata)
//     instead of failing the query.
package router

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/query"
)

// ErrShardTimeout is the per-shard deadline error: no replica of the
// shard produced a valid response within Config.ShardTimeout.
var ErrShardTimeout = errors.New("router: shard timed out")

// Config parameterizes a Router.
type Config struct {
	// Shards is the fleet topology: Shards[i] lists the interchangeable
	// replicas of shard i. Every shard needs at least one replica.
	Shards [][]Backend
	// Weights are the ranking coefficients the router uses to fold the
	// tf·idf component in (nil = query.DefaultWeights). They must match
	// the shard servers' weights or rankings will diverge.
	Weights *query.Weights
	// ShardTimeout bounds one shard's whole call, hedges included
	// (0 = none). Measured on Clock, so virtual-time tests can script
	// it.
	ShardTimeout time.Duration
	// HedgeAfter fires one hedged attempt at another replica when the
	// primary has not answered after this long (0 = no hedging, unless
	// HedgeQuantile enables it).
	HedgeAfter time.Duration
	// HedgeQuantile, when in (0,1], derives the hedge delay from the
	// observed shard-latency distribution instead: hedge when the
	// primary is slower than this quantile of recent responses. Until
	// enough samples exist (minHedgeSamples), HedgeAfter is used as the
	// warmup delay.
	HedgeQuantile float64
	// Partial tolerates failed shards: the query succeeds with the
	// responding subset (response metadata reports how many answered).
	// With Partial false any shard failure fails the query.
	Partial bool
	// Clock drives hedge, timeout and quarantine schedules (nil = wall
	// clock).
	Clock fetch.Clock
	// Seed seeds the replica-pick PRNG (0 = 1), making pick sequences
	// reproducible in tests.
	Seed int64
	// EjectThreshold is the failure-EWMA level that quarantines a
	// replica (0 = 0.8; above 1 ejection never triggers).
	EjectThreshold float64
	// QuarantineBase and QuarantineMax bound the quarantine backoff
	// (0 = 5s / 5m): each failed probe doubles the sentence up to Max.
	QuarantineBase, QuarantineMax time.Duration
	// ProbationProbes is how many consecutive successful health probes
	// readmit a quarantined replica (0 = 2).
	ProbationProbes int
	// HealthPenalty converts a replica's failure EWMA into equivalent
	// outstanding requests for the P2C load comparison (0 = 4): a
	// replica at EWMA 0.5 competes as if it carried 2 extra requests.
	HealthPenalty float64
	// BudgetFloor fast-rejects shard calls whose remaining propagated
	// deadline budget is at or below this (0 = 2ms) — the caller has
	// already hedged or given up by then.
	BudgetFloor time.Duration
}

// replica is one backend plus its load and health accounting. The
// health fields are guarded by Router.mu.
type replica struct {
	backend     Backend
	outstanding atomic.Int64

	// health is the failure EWMA in [0, 1]: 0 is healthy, 1 is failing
	// every attempt.
	health float64
	// quarantined replicas are skipped by pick (except as a last
	// resort) until probation readmits them.
	quarantined     bool
	quarantineUntil time.Time
	backoff         time.Duration
	// probeOK counts consecutive successful probes in probation.
	probeOK int
}

// group is one shard's replica set.
type group struct {
	replicas []*replica
}

// Router fans queries out to shard groups and merges the responses.
type Router struct {
	cfg    Config
	w      query.Weights
	clock  fetch.Clock
	groups []*group
	lat    *latencyRing

	// mu guards rng: replica picks are cheap and rare enough that one
	// lock beats per-goroutine PRNG plumbing.
	mu  sync.Mutex
	rng *rand.Rand
}

// New validates cfg and returns a ready Router.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("router: Config.Shards is empty")
	}
	r := &Router{
		cfg:   cfg,
		w:     query.DefaultWeights,
		clock: cfg.Clock,
		lat:   newLatencyRing(latencyWindow),
	}
	if cfg.Weights != nil {
		r.w = *cfg.Weights
	}
	if r.clock == nil {
		r.clock = fetch.RealClock{}
	}
	if cfg.HedgeQuantile < 0 || cfg.HedgeQuantile > 1 {
		return nil, fmt.Errorf("router: HedgeQuantile %v outside [0,1]", cfg.HedgeQuantile)
	}
	if r.cfg.EjectThreshold <= 0 {
		r.cfg.EjectThreshold = 0.8
	}
	if r.cfg.QuarantineBase <= 0 {
		r.cfg.QuarantineBase = 5 * time.Second
	}
	if r.cfg.QuarantineMax <= 0 {
		r.cfg.QuarantineMax = 5 * time.Minute
	}
	if r.cfg.ProbationProbes <= 0 {
		r.cfg.ProbationProbes = 2
	}
	if r.cfg.HealthPenalty <= 0 {
		r.cfg.HealthPenalty = 4
	}
	if r.cfg.BudgetFloor <= 0 {
		r.cfg.BudgetFloor = 2 * time.Millisecond
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	r.rng = rand.New(rand.NewSource(seed))
	for i, reps := range cfg.Shards {
		if len(reps) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas", i)
		}
		g := &group{}
		for j, b := range reps {
			if b == nil {
				return nil, fmt.Errorf("router: shard %d replica %d is nil", i, j)
			}
			g.replicas = append(g.replicas, &replica{backend: b})
		}
		r.groups = append(r.groups, g)
	}
	return r, nil
}

// NumShards returns the fleet's shard count.
func (r *Router) NumShards() int { return len(r.groups) }

// Replicas returns shard i's replica count.
func (r *Router) Replicas(i int) int { return len(r.groups[i].replicas) }

// Merged is one routed query's answer plus its serving metadata.
type Merged struct {
	// Results is the global top-k in rank order.
	Results []query.ResultWithSnippet
	// ShardsOK of ShardsTotal shards contributed; ShardsOK <
	// ShardsTotal marks a partial (degraded) answer.
	ShardsOK, ShardsTotal int
	// FailedShards lists the shard indices that did not answer.
	FailedShards []int
	// Docs, States and Gen aggregate the responding shards' snapshot
	// metadata (Gen is the newest responding generation).
	Docs, States int
	Gen          int64
	// Hedges counts hedged attempts launched for this query.
	Hedges int
	// Duplicates counts candidates dropped because another shard
	// already returned the same (URL, state) — nonzero only on
	// overlapping (misconfigured) shards.
	Duplicates int
}

// Search fans q out to every shard, applies the global idf correction,
// and returns the merged top-k. k <= 0 returns all results. The error
// is non-nil when no shard answered, or when any shard failed and
// Config.Partial is off.
func (r *Router) Search(ctx context.Context, q string, k int) (*Merged, error) {
	tel := obs.From(ctx)
	tel.Counter("router.fanout.queries").Inc()
	ctx, sp := obs.StartSpan(ctx, obs.SpanRouterFanout, obs.A("q", q))
	start := time.Now()
	m, err := r.search(ctx, q, k, tel)
	tel.Histogram("router.fanout.latency").Observe(time.Since(start).Seconds())
	if m != nil {
		sp.SetAttr("shards_ok", fmt.Sprintf("%d/%d", m.ShardsOK, m.ShardsTotal))
		sp.SetAttr("results", strconv.Itoa(len(m.Results)))
	}
	sp.End(err)
	return m, err
}

func (r *Router) search(ctx context.Context, q string, k int, tel *obs.Telemetry) (*Merged, error) {
	terms := query.Parse(q)
	n := len(r.groups)
	merged := &Merged{ShardsTotal: n, Results: make([]query.ResultWithSnippet, 0)}
	if len(terms) == 0 {
		// Nothing to ship: an empty conjunction matches nothing on any
		// shard, so the fleet is vacuously complete.
		merged.ShardsOK = n
		return merged, nil
	}

	type outcome struct {
		res    *query.ShardResult
		err    error
		hedges int
	}
	outs := make([]outcome, n)
	var wg sync.WaitGroup
	for i := range r.groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, hedges, err := r.callShard(ctx, i, q, terms, tel)
			outs[i] = outcome{res: res, err: err, hedges: hedges}
		}(i)
	}
	wg.Wait()

	responses := make([]*query.ShardResult, n)
	var firstErr error
	for i, o := range outs {
		merged.Hedges += o.hedges
		if o.err != nil {
			merged.FailedShards = append(merged.FailedShards, i)
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", i, o.err)
			}
			continue
		}
		responses[i] = o.res
		merged.ShardsOK++
	}
	if merged.ShardsOK == 0 {
		return merged, fmt.Errorf("router: no shard answered: %w", firstErr)
	}
	if merged.ShardsOK < n {
		tel.Counter("router.fanout.partial").Inc()
		if !r.cfg.Partial {
			return merged, fmt.Errorf("router: %d/%d shards answered and partial results are disabled: %w",
				merged.ShardsOK, n, firstErr)
		}
	}

	merged.Results, merged.Duplicates = mergeCandidates(terms, r.w, responses, k)
	if merged.Duplicates > 0 {
		tel.Counter("router.fanout.dup_docs").Add(int64(merged.Duplicates))
	}
	for _, res := range responses {
		if res == nil {
			continue
		}
		merged.Docs += res.Docs
		merged.States += res.States
		if res.Gen > merged.Gen {
			merged.Gen = res.Gen
		}
	}
	return merged, nil
}

// mergeCandidates is the global half of Figure 6.4's two-step merge:
// sum df and state counts across the responding shards (in shard-index
// order, so the arithmetic is deterministic), compute the global idf,
// fold the tf·idf component into every candidate's pre-idf base, and
// sort to the deterministic global order — exactly the float operations
// the single-snapshot Broker performs, so scores match it bit-for-bit.
// Candidates whose (URL, state) was already produced by an earlier
// shard are dropped (the count is the second return).
func mergeCandidates(terms []string, w query.Weights, responses []*query.ShardResult, k int) ([]query.ResultWithSnippet, int) {
	globalDF := make([]int, len(terms))
	totalStates := 0
	total := 0
	for _, res := range responses {
		if res == nil {
			continue
		}
		for i, df := range res.DF {
			globalDF[i] += df
		}
		totalStates += res.TotalStates
		total += len(res.Candidates)
	}
	idf := make([]float64, len(terms))
	for i, df := range globalDF {
		if df > 0 && totalStates > 0 {
			idf[i] = math.Log(float64(totalStates) / float64(df))
		}
	}

	type docKey struct {
		url   string
		state int
	}
	out := make([]query.ResultWithSnippet, 0, total)
	seen := make(map[docKey]bool, total)
	dups := 0
	for _, res := range responses {
		if res == nil {
			continue
		}
		for _, c := range res.Candidates {
			if len(c.TFs) != len(terms) {
				// checkShardResult rejects these before merge; the
				// guard keeps a hostile response from panicking the
				// fold if it ever slips through.
				continue
			}
			key := docKey{url: c.URL, state: c.State}
			if seen[key] {
				dups++
				continue
			}
			seen[key] = true
			score := c.Base
			for t := range terms {
				score += w.TFIDF * c.TFs[t] * idf[t]
			}
			out = append(out, query.ResultWithSnippet{
				Result:  query.Result{URL: c.URL, State: model.StateID(c.State), Score: score},
				Snippet: c.Snippet,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].URL != out[j].URL {
			return out[i].URL < out[j].URL
		}
		return out[i].State < out[j].State
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, dups
}

// callShard runs one shard's call: primary attempt at a P2C-picked
// replica, an optional hedged attempt when the hedge delay elapses
// first, immediate failover to the next replica when an attempt errors,
// and the shard deadline — ShardTimeout clamped to the caller's
// remaining budget — over it all. The first valid response wins;
// whatever is still in flight is canceled (and counted). Every outcome
// feeds the replica health EWMAs: errors and timeouts hard, "the hedge
// had to fire against you" softly.
func (r *Router) callShard(ctx context.Context, shard int, q string, terms []string, tel *obs.Telemetry) (*query.ShardResult, int, error) {
	g := r.groups[shard]

	remaining, hasBudget := r.budgetRemaining(ctx)
	if hasBudget && remaining <= r.cfg.BudgetFloor {
		// The caller's budget is already gone: executing would produce
		// an answer nobody is waiting for.
		tel.Counter("router.fanout.budget_rejected").Inc()
		return nil, 0, ErrBudgetExhausted
	}
	timeout := r.cfg.ShardTimeout
	if hasBudget && (timeout == 0 || remaining < timeout) {
		timeout = remaining
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	_, sp := obs.StartSpan(ctx, obs.SpanRouterShard, obs.A("shard", strconv.Itoa(shard)))
	start := r.clock.Now()

	type attempt struct {
		res    *query.ShardResult
		err    error
		hedged bool
		ri     int
	}
	// Buffered to the replica count — every replica is attempted at
	// most once per call, so losers never block sending their (ignored)
	// outcome after the winner returns.
	resc := make(chan attempt, len(g.replicas))
	used := make([]bool, len(g.replicas))
	// pendingReps tracks which replicas are in flight, so hedge fires
	// and shard timeouts can penalize the replicas that caused them.
	pendingReps := make([]int, 0, len(g.replicas))
	launch := func(hedged bool) bool {
		ri := r.pick(g, used, tel)
		if ri < 0 {
			return false
		}
		used[ri] = true
		pendingReps = append(pendingReps, ri)
		rep := g.replicas[ri]
		rep.outstanding.Add(1)
		go func() {
			defer rep.outstanding.Add(-1)
			res, err := rep.backend.ShardSearch(cctx, q)
			if err == nil {
				err = checkShardResult(res, terms)
			}
			resc <- attempt{res: res, err: err, hedged: hedged, ri: ri}
		}()
		return true
	}
	dropPending := func(ri int) {
		for i, p := range pendingReps {
			if p == ri {
				pendingReps = append(pendingReps[:i], pendingReps[i+1:]...)
				return
			}
		}
	}
	launch(false)

	// The hedge and deadline schedules ride the injectable clock, not
	// context.WithTimeout, so virtual-time tests can script them
	// exactly. Sleeps return early (with an error) when the call ends.
	hedgec := make(chan struct{}, 1)
	if d := r.hedgeDelay(); d > 0 && len(g.replicas) > 1 {
		go func() {
			if r.clock.Sleep(cctx, d) == nil {
				hedgec <- struct{}{}
			}
		}()
	}
	timeoutc := make(chan struct{}, 1)
	if timeout > 0 {
		go func() {
			if r.clock.Sleep(cctx, timeout) == nil {
				timeoutc <- struct{}{}
			}
		}()
	}

	hedges := 0
	pending := 1
	var lastErr error
	for {
		select {
		case a := <-resc:
			pending--
			dropPending(a.ri)
			if a.err == nil {
				r.record(g.replicas[a.ri], 0, tel)
				lat := r.clock.Now().Sub(start)
				r.lat.Observe(lat)
				tel.Histogram("router.shard.latency").Observe(lat.Seconds())
				tel.Histogram("router.shard.latency." + strconv.Itoa(shard)).Observe(lat.Seconds())
				if a.hedged {
					tel.Counter("router.fanout.hedge_wins").Inc()
				}
				if pending > 0 {
					tel.Counter("router.fanout.hedge_canceled").Add(int64(pending))
				}
				sp.SetAttr("hedges", strconv.Itoa(hedges))
				sp.End(nil)
				return a.res, hedges, nil
			}
			r.record(g.replicas[a.ri], failHard, tel)
			lastErr = a.err
			tel.Counter("router.fanout.shard_errors").Inc()
			// Fail over: a dead replica must not kill the shard while
			// unused siblings remain and nothing else is in flight.
			if pending == 0 {
				if !launch(false) {
					sp.End(lastErr)
					return nil, hedges, lastErr
				}
				pending++
			}
		case <-hedgec:
			// The primary was slow enough to trigger the hedge: a soft
			// strike against whatever is still in flight.
			for _, ri := range pendingReps {
				r.record(g.replicas[ri], failHedge, tel)
			}
			if launch(true) {
				pending++
				hedges++
				tel.Counter("router.fanout.hedges").Inc()
			}
		case <-timeoutc:
			for _, ri := range pendingReps {
				r.record(g.replicas[ri], failHard, tel)
			}
			tel.Counter("router.fanout.shard_errors").Inc()
			sp.End(ErrShardTimeout)
			return nil, hedges, ErrShardTimeout
		case <-cctx.Done():
			sp.End(cctx.Err())
			return nil, hedges, cctx.Err()
		}
	}
}

// hedgeDelay resolves the current hedge delay: the observed latency
// quantile when HedgeQuantile is set and warmed up, else the fixed
// HedgeAfter (which doubles as the warmup delay), else 0 (off).
func (r *Router) hedgeDelay() time.Duration {
	if r.cfg.HedgeQuantile > 0 {
		if d, ok := r.lat.Quantile(r.cfg.HedgeQuantile); ok {
			return d
		}
	}
	return r.cfg.HedgeAfter
}

// pick chooses a replica among the not-yet-used, not-quarantined ones
// by power of two choices: sample two distinct candidates (seeded
// PRNG), take the one with the lower effective load — outstanding
// requests plus the failure EWMA scaled by HealthPenalty, so a sick
// replica sheds load before it is sick enough to eject — breaking ties
// toward the lower index. When every free replica is quarantined the
// pick falls back to them anyway (last resort: guessing beats refusing
// when nothing healthy remains, and it keeps a probe-less fleet live).
// Returns -1 when every replica was already attempted.
func (r *Router) pick(g *group, used []bool, tel *obs.Telemetry) int {
	r.mu.Lock()
	free := make([]int, 0, len(g.replicas))
	for i := range g.replicas {
		if !used[i] && !g.replicas[i].quarantined {
			free = append(free, i)
		}
	}
	lastResort := false
	if len(free) == 0 {
		for i := range g.replicas {
			if !used[i] {
				free = append(free, i)
			}
		}
		lastResort = len(free) > 0
	}
	if len(free) == 0 {
		r.mu.Unlock()
		return -1
	}
	if lastResort {
		tel.Counter("router.replica.last_resort").Inc()
	}
	if len(free) == 1 {
		r.mu.Unlock()
		return free[0]
	}
	ai := r.rng.Intn(len(free))
	bi := (ai + 1 + r.rng.Intn(len(free)-1)) % len(free)
	a, b := free[ai], free[bi]
	la := float64(g.replicas[a].outstanding.Load()) + g.replicas[a].health*r.cfg.HealthPenalty
	lb := float64(g.replicas[b].outstanding.Load()) + g.replicas[b].health*r.cfg.HealthPenalty
	r.mu.Unlock()
	if lb < la || (lb == la && b < a) {
		return b
	}
	return a
}

// checkShardResult validates a shard response against the routed query
// before it may enter the merge: aligned vectors, finite scores,
// plausible counts. Responses arrive from the network, so nothing here
// is trusted — a violation fails the attempt (triggering failover), it
// never panics the router.
func checkShardResult(res *query.ShardResult, terms []string) error {
	const maxURLLen = 8 << 10
	if res == nil {
		return errors.New("router: nil shard response")
	}
	if len(res.Terms) != len(terms) {
		return fmt.Errorf("router: shard answered %d terms, query has %d", len(res.Terms), len(terms))
	}
	for i := range terms {
		if res.Terms[i] != terms[i] {
			return fmt.Errorf("router: shard term %d = %q, query has %q", i, res.Terms[i], terms[i])
		}
	}
	if len(res.DF) != len(terms) {
		return fmt.Errorf("router: df vector has %d entries, query has %d terms", len(res.DF), len(terms))
	}
	for i, df := range res.DF {
		if df < 0 {
			return fmt.Errorf("router: negative df[%d] = %d", i, df)
		}
	}
	if res.TotalStates < 0 || res.Docs < 0 || res.States < 0 || res.Gen < 0 {
		return fmt.Errorf("router: negative collection stats (states %d, docs %d/%d, gen %d)",
			res.TotalStates, res.Docs, res.States, res.Gen)
	}
	for i := range res.Candidates {
		c := &res.Candidates[i]
		if c.URL == "" || len(c.URL) > maxURLLen {
			return fmt.Errorf("router: candidate %d has bad URL (%d bytes)", i, len(c.URL))
		}
		if c.State < 0 {
			return fmt.Errorf("router: candidate %d has negative state %d", i, c.State)
		}
		if len(c.TFs) != len(terms) {
			return fmt.Errorf("router: candidate %d has %d tfs, query has %d terms", i, len(c.TFs), len(terms))
		}
		if math.IsNaN(c.Base) || math.IsInf(c.Base, 0) {
			return fmt.Errorf("router: candidate %d has non-finite base", i)
		}
		for t, tf := range c.TFs {
			if math.IsNaN(tf) || math.IsInf(tf, 0) || tf < 0 {
				return fmt.Errorf("router: candidate %d has bad tf[%d]", i, t)
			}
		}
	}
	return nil
}
