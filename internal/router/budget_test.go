package router

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/serve"
)

// TestHTTPBackendForwardsBudget: a shard call carrying a clock budget
// forwards the remaining milliseconds in X-Ajaxserve-Budget-Ms, and a
// call whose budget is under a millisecond fails fast without touching
// the network.
func TestHTTPBackendForwardsBudget(t *testing.T) {
	clock := newTestClock()
	var gotBudget string
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		gotBudget = r.Header.Get(serve.HeaderBudget)
		w.Write([]byte(`{"terms":["video"],"df":[0],"total_states":0,"gen":1,"docs":0,"states":0,"candidates":[]}`))
	}))
	defer ts.Close()
	b := &HTTPBackend{BaseURL: ts.URL}

	ctx := WithBudget(context.Background(), clock.Now().Add(500*time.Millisecond), clock)
	if _, err := b.ShardSearch(ctx, "video"); err != nil {
		t.Fatal(err)
	}
	if gotBudget != "500" {
		t.Fatalf("forwarded budget = %q, want \"500\"", gotBudget)
	}

	// Sub-millisecond remainder: reject before the request is built.
	ctx = WithBudget(context.Background(), clock.Now().Add(500*time.Microsecond), clock)
	if _, err := b.ShardSearch(ctx, "video"); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if hits != 1 {
		t.Fatalf("exhausted-budget call still hit the network (%d hits)", hits)
	}

	// No budget on the context: no header.
	if _, err := b.ShardSearch(context.Background(), "video"); err != nil {
		t.Fatal(err)
	}
	if gotBudget != "" {
		t.Fatalf("budget header without a budget = %q", gotBudget)
	}
}

// TestRouterHTTPPropagatesBudget: the router's HTTP layer seeds the
// fan-out budget from min(QueryTimeout, incoming budget header) and the
// serve tier receives the remainder. An incoming budget at the floor is
// rejected at the router's front door.
func TestRouterHTTPPropagatesBudget(t *testing.T) {
	var gotBudget string
	shard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotBudget = r.Header.Get(serve.HeaderBudget)
		w.Write([]byte(`{"terms":["video"],"df":[1],"total_states":5,"gen":1,"docs":1,"states":5,` +
			`"candidates":[{"url":"http://a","state":0,"base":1,"tfs":[1],"snippet":"[a]"}]}`))
	}))
	defer shard.Close()

	rt, err := New(Config{Shards: [][]Backend{{&HTTPBackend{BaseURL: shard.URL}}}})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rs := NewServer(rt, ServerConfig{QueryTimeout: 2 * time.Second}, obs.New(reg, nil))
	rts := httptest.NewServer(rs.Handler())
	defer rts.Close()

	// The caller's 800ms budget is tighter than QueryTimeout and wins.
	req, _ := http.NewRequest("GET", rts.URL+"/search?q=video", nil)
	req.Header.Set(serve.HeaderBudget, "800")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if gotBudget == "" {
		t.Fatal("shard call carried no budget header")
	}
	if fwd, err := strconv.Atoi(gotBudget); err != nil || fwd <= 0 || fwd > 800 {
		t.Fatalf("forwarded budget = %q, want in (0, 800]", gotBudget)
	}

	// An incoming budget at the floor is shed at the front door.
	req, _ = http.NewRequest("GET", rts.URL+"/search?q=video", nil)
	req.Header.Set(serve.HeaderBudget, "2")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("floor budget: status %d, want 503", resp.StatusCode)
	}
	if got := reg.Counter("router.budget_rejected").Value(); got != 1 {
		t.Fatalf("router.budget_rejected = %d, want 1", got)
	}
}
