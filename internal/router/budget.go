package router

import (
	"context"
	"errors"
	"time"

	"ajaxcrawl/internal/fetch"
)

// Deadline-budget propagation. context.WithTimeout deadlines are wall
// time, which virtual-clock tests cannot script; the fleet instead
// threads an explicit budget — a deadline measured on the injectable
// fetch.Clock — through the context. The router's HTTP layer sets it
// from its own per-request deadline (clamped to any budget the caller
// already propagated via the X-Ajaxserve-Budget-Ms header), every shard
// call clamps its deadline to what remains, and HTTPBackend forwards
// the remainder to the shard server, which fast-rejects when the floor
// is gone. The result: no tier burns CPU on work the caller has
// already abandoned, and the whole schedule is deterministic under
// virtual time.

// ErrBudgetExhausted means the caller's remaining deadline budget was
// below the floor before the work even started — the query was
// abandoned upstream, so the call is rejected up front rather than
// executed into a void.
var ErrBudgetExhausted = errors.New("router: deadline budget exhausted")

type budgetKey struct{}

type budgetVal struct {
	deadline time.Time
	clock    fetch.Clock
}

// WithBudget attaches a deadline budget to ctx: the work must finish by
// deadline as measured on clock. It does not cancel the context — the
// budget is advisory for clamping and fast-rejects; cancellation stays
// with the usual context machinery.
func WithBudget(ctx context.Context, deadline time.Time, clock fetch.Clock) context.Context {
	if clock == nil {
		clock = fetch.RealClock{}
	}
	return context.WithValue(ctx, budgetKey{}, budgetVal{deadline: deadline, clock: clock})
}

// BudgetRemaining reports the budget left on ctx's clock. ok is false
// when no budget was attached.
func BudgetRemaining(ctx context.Context) (time.Duration, bool) {
	v, ok := ctx.Value(budgetKey{}).(budgetVal)
	if !ok {
		return 0, false
	}
	return v.deadline.Sub(v.clock.Now()), true
}

// budgetRemaining resolves the effective remaining budget for a shard
// call: an explicit clock budget wins; otherwise a plain context
// deadline (wall clock) is honored so library callers that only use
// context.WithTimeout still get clamped fan-out deadlines.
func (r *Router) budgetRemaining(ctx context.Context) (time.Duration, bool) {
	if d, ok := BudgetRemaining(ctx); ok {
		return d, true
	}
	if dl, ok := ctx.Deadline(); ok {
		return time.Until(dl), true
	}
	return 0, false
}
