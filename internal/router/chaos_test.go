package router

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/query"
	"ajaxcrawl/internal/serve"
)

// TestShardStallPartialResult stalls every replica of one shard past
// the shard deadline (in virtual time): the query must come back
// degraded — not hung, not failed — with the stalled shard reported and
// the partial answer counted.
func TestShardStallPartialResult(t *testing.T) {
	terms := []string{"video"}
	good := canned(terms, 5, cand("http://a", 0, 1, 1))
	clock := newTestClock()
	stalled := &scriptedGroup{clock: clock}
	stalled.script = []func(ctx context.Context) (*query.ShardResult, error){blockUntilCanceled}

	topo := [][]Backend{
		{&staticBackend{res: good}},
		{&staticBackend{res: canned(terms, 5, cand("http://b", 0, 0.5, 1))}},
		{&staticBackend{res: canned(terms, 5, cand("http://c", 0, 0.25, 1))}},
		stalled.backends(2),
	}
	r, err := New(Config{
		Shards:       topo,
		ShardTimeout: time.Second,
		Partial:      true,
		Clock:        clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	tel := obs.New(nil, nil)
	ctx := obs.With(context.Background(), tel)

	type out struct {
		m   *Merged
		err error
	}
	done := make(chan out, 1)
	go func() {
		m, err := r.Search(ctx, "video", 10)
		done <- out{m, err}
	}()

	// Fast shards answer instantly; only the stalled shard's deadline
	// timer matters. Keep advancing until it has registered and fired
	// (over-advancing releases nothing else that changes the outcome).
	var o out
	for fired := false; !fired; {
		select {
		case o = <-done:
			fired = true
		case <-time.After(time.Millisecond):
			clock.Advance(time.Second)
		}
	}
	if o.err != nil {
		t.Fatalf("degraded query failed outright: %v", o.err)
	}
	if o.m.ShardsOK != 3 || o.m.ShardsTotal != 4 {
		t.Fatalf("shards = %d/%d, want 3/4", o.m.ShardsOK, o.m.ShardsTotal)
	}
	if len(o.m.FailedShards) != 1 || o.m.FailedShards[0] != 3 {
		t.Fatalf("FailedShards = %v, want [3]", o.m.FailedShards)
	}
	if len(o.m.Results) != 3 {
		t.Fatalf("results = %d, want the 3 healthy shards' docs", len(o.m.Results))
	}
	if got := tel.Counter("router.fanout.partial").Value(); got != 1 {
		t.Fatalf("router.fanout.partial = %d, want 1", got)
	}
	if got := tel.Counter("router.fanout.shard_errors").Value(); got != 1 {
		t.Fatalf("router.fanout.shard_errors = %d, want 1", got)
	}
}

// TestReplicaDiesMidQueryFailoverCompletes kills the primary replica
// mid-flight (it errors after 30ms of virtual time); failover to the
// sibling must still produce a COMPLETE result — no partial, no hedge.
func TestReplicaDiesMidQueryFailoverCompletes(t *testing.T) {
	terms := []string{"video"}
	good := canned(terms, 5, cand("http://a", 0, 1, 1))
	clock := newTestClock()
	g := &scriptedGroup{clock: clock}
	g.script = []func(ctx context.Context) (*query.ShardResult, error){
		func(ctx context.Context) (*query.ShardResult, error) {
			if err := clock.Sleep(ctx, 30*time.Millisecond); err != nil {
				return nil, err
			}
			return nil, errReplicaDown
		},
		func(ctx context.Context) (*query.ShardResult, error) { return good, nil },
	}
	r, err := New(Config{Shards: [][]Backend{g.backends(2)}, Clock: clock, Partial: false})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Merged, 1)
	go func() { done <- mustSearch(t, r, context.Background(), "video", 10) }()
	clock.awaitWaiters(t, 1) // the dying replica's 30ms fuse
	clock.Advance(30 * time.Millisecond)
	m := <-done
	if m.ShardsOK != 1 || m.ShardsTotal != 1 {
		t.Fatalf("shards = %d/%d, want 1/1 (failover, not partial)", m.ShardsOK, m.ShardsTotal)
	}
	if len(m.Results) != 1 || m.Results[0].URL != "http://a" {
		t.Fatalf("results = %+v", m.Results)
	}
	if m.Hedges != 0 {
		t.Fatalf("failover counted as hedge: %d", m.Hedges)
	}
	arr := g.arrivalTimes()
	if len(arr) != 2 || arr[1].at.Sub(time.Unix(0, 0)) != 30*time.Millisecond {
		t.Fatalf("failover arrivals = %+v, want second immediately at t=30ms", arr)
	}
}

// TestRouterHotSwapRace hammers a LocalBackend fleet with queries while
// every shard's query.Server hot-swaps generations underneath it — the
// -race build must stay silent and every answer must be internally
// consistent (a complete fleet, results from SOME coherent generation).
func TestRouterHotSwapRace(t *testing.T) {
	graphs, pr := crawlCorpus(t, 8, 13)
	const shards = 2
	dirs := publishPartitioned(t, graphs, pr, shards)
	servers := make([]*query.Server, shards)
	topo := make([][]Backend, shards)
	for i, dir := range dirs {
		snap, _, err := serve.LoadSnapshot(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = query.NewServer(snap, query.CacheOptions{})
		topo[i] = []Backend{LocalBackend{QS: servers[i]}}
	}
	rt, err := New(Config{Shards: topo})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m, err := rt.Search(context.Background(), "music love", 5)
				if err != nil {
					t.Errorf("query %d: %v", i, err)
					return
				}
				if m.ShardsOK != shards {
					t.Errorf("query %d: %d/%d shards", i, m.ShardsOK, m.ShardsTotal)
					return
				}
			}
		}()
	}
	// Swap every shard's snapshot 25 times while the queries fly. Each
	// swap installs a freshly loaded snapshot: a live snapshot must never
	// be mutated, so reuse is not an option.
	for gen := 0; gen < 25; gen++ {
		for i, dir := range dirs {
			snap, _, err := serve.LoadSnapshot(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			servers[i].Swap(context.Background(), snap)
		}
	}
	close(stop)
	wg.Wait()
}

// TestRouterHTTP502WhenFleetDown: the router is a gateway; a fleet with
// nothing answering must say 502 (with the 0/N tally), not 500 or a
// hang.
func TestRouterHTTP502WhenFleetDown(t *testing.T) {
	bad := &staticBackend{err: errReplicaDown}
	rt, err := New(Config{Shards: [][]Backend{{bad}, {bad}}, Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	rs := NewServer(rt, ServerConfig{}, obs.New(nil, nil))
	rts := httptest.NewServer(rs.Handler())
	defer rts.Close()
	resp, body := httpGet(t, rts.URL+"/search?q=video")
	if resp.StatusCode != 502 {
		t.Fatalf("status %d, want 502: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(HeaderShards); got != "0/2" {
		t.Fatalf("%s = %q, want 0/2", HeaderShards, got)
	}
}

// TestRouterHTTPValidation pins the request-contract parity with
// ajaxserve: missing q and malformed k are 400s, k above MaxK clamps.
func TestRouterHTTPValidation(t *testing.T) {
	terms := []string{"video"}
	b := &staticBackend{res: canned(terms, 5, cand("http://a", 0, 1, 1))}
	rt, err := New(Config{Shards: [][]Backend{{b}}})
	if err != nil {
		t.Fatal(err)
	}
	rs := NewServer(rt, ServerConfig{MaxK: 5}, obs.New(nil, nil))
	rts := httptest.NewServer(rs.Handler())
	defer rts.Close()
	for _, bad := range []string{"/search", "/search?q=", "/search?q=x&k=abc", "/search?q=x&k=0", "/search?q=x&k=-3"} {
		resp, _ := httpGet(t, rts.URL+bad)
		if resp.StatusCode != 400 {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
	resp, body := httpGet(t, rts.URL+"/search?q=video&k=9999")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if want := `"k":5`; !bytes.Contains(body, []byte(want)) {
		t.Fatalf("k not clamped to MaxK: %s", body)
	}
	// /healthz reports the topology.
	resp, body = httpGet(t, rts.URL+"/healthz")
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte(`"shards":1`)) {
		t.Fatalf("healthz = %d %s", resp.StatusCode, body)
	}
}

// TestRouterHTTPSheds: the router's in-flight gate sheds with 429
// before any shard is bothered.
func TestRouterHTTPSheds(t *testing.T) {
	b := &staticBackend{res: canned([]string{"video"}, 5, cand("http://a", 0, 1, 1))}
	rt, err := New(Config{Shards: [][]Backend{{b}}})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rs := NewServer(rt, ServerConfig{MaxInflight: 1}, obs.New(reg, nil))
	tok, ok := rs.Limiter().TryAcquire() // saturate the gate
	if !ok {
		t.Fatal("could not saturate the limiter")
	}
	rts := httptest.NewServer(rs.Handler())
	defer rts.Close()
	resp, _ := httpGet(t, rts.URL+"/search?q=video")
	if resp.StatusCode != 429 {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	// The hint must be a positive integer, not a hardcoded decoration.
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if got := reg.Counter("router.shed").Value(); got != 1 {
		t.Fatalf("router.shed = %d, want 1", got)
	}
	if b.callCount() != 0 {
		t.Fatalf("shed request still reached a shard (%d calls)", b.callCount())
	}
	tok.Cancel()
	resp, _ = httpGet(t, rts.URL+"/search?q=video")
	if resp.StatusCode != 200 {
		t.Fatalf("status after drain = %d", resp.StatusCode)
	}
}
