package router

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ajaxcrawl/internal/core"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/index"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/query"
	"ajaxcrawl/internal/serve"
	"ajaxcrawl/internal/webapp"
)

// crawlCorpus crawls the synthetic webapp once and returns the state
// graphs plus a deterministic PageRank vector. The same corpus feeds
// both the single-snapshot reference and every sharded fleet, so any
// response difference is the router's fault.
func crawlCorpus(t *testing.T, videos int, seed int64) ([]*model.Graph, map[string]float64) {
	t.Helper()
	site := webapp.New(webapp.DefaultConfig(videos, seed))
	f := &fetch.HandlerFetcher{Handler: site.Handler()}
	urls := make([]string, videos)
	for i := range urls {
		urls[i] = webapp.WatchURL(site.VideoID(i))
	}
	c := core.New(f, core.Options{UseHotNode: true, MaxStates: 4})
	graphs, _, err := c.CrawlAll(context.Background(), urls)
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) < 4 {
		t.Fatalf("corpus too small: %d graphs", len(graphs))
	}
	pr := make(map[string]float64, len(graphs))
	for i, g := range graphs {
		pr[g.URL] = 1.0 / float64(i+2)
	}
	return graphs, pr
}

// publishPartitioned splits graphs round-robin into n partitions and
// publishes each as its own snapshot directory (one index shard per
// partition), returning the directories.
func publishPartitioned(t *testing.T, graphs []*model.Graph, pr map[string]float64, n int) []string {
	t.Helper()
	parts := make([][]*model.Graph, n)
	for i, g := range graphs {
		parts[i%n] = append(parts[i%n], g)
	}
	dirs := make([]string, n)
	for i, part := range parts {
		if len(part) == 0 {
			t.Fatalf("partition %d/%d is empty (corpus of %d)", i, n, len(graphs))
		}
		dir := t.TempDir()
		ix := index.Build(part, pr, 0)
		if _, err := index.SaveSnapshot(dir, []*index.Index{ix}, part); err != nil {
			t.Fatal(err)
		}
		dirs[i] = dir
	}
	return dirs
}

func newServeServer(t *testing.T, dir string) *httptest.Server {
	t.Helper()
	s, err := serve.New(serve.Config{SnapshotDir: dir}, obs.New(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func httpGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func searchPath(q string, k int) string {
	return "/search?q=" + strings.ReplaceAll(q, " ", "+") + fmt.Sprintf("&k=%d", k)
}

// TestShardedMatchesSingleSnapshot is the differential golden test the
// whole tier stands on: the same crawled corpus is published once as a
// single snapshot and again partitioned across 1, 2 and 4 shard
// servers, and for the full 100-query workload the routed fleet must
// answer with the BYTE-identical /search body — same documents, same
// scores (the global-idf correction reproduces the single-index math
// bit-for-bit), same snippets, same order.
func TestShardedMatchesSingleSnapshot(t *testing.T) {
	const k = 10
	graphs, pr := crawlCorpus(t, 24, 101)
	queries := webapp.Queries()

	// Reference: every graph in one snapshot behind one ajaxserve.
	singleDir := publishPartitioned(t, graphs, pr, 1)[0]
	single := newServeServer(t, singleDir)
	want := make(map[string][]byte, len(queries))
	for _, q := range queries {
		resp, body := httpGet(t, single.URL+searchPath(q, k))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference q=%q: status %d: %s", q, resp.StatusCode, body)
		}
		want[q] = body
	}

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dirs := publishPartitioned(t, graphs, pr, shards)
			topo := make([][]Backend, shards)
			for i, dir := range dirs {
				ts := newServeServer(t, dir)
				topo[i] = []Backend{&HTTPBackend{BaseURL: ts.URL}}
			}
			rt, err := New(Config{Shards: topo})
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			rs := NewServer(rt, ServerConfig{}, obs.New(reg, nil))
			rts := httptest.NewServer(rs.Handler())
			defer rts.Close()

			for _, q := range queries {
				resp, body := httpGet(t, rts.URL+searchPath(q, k))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("q=%q: status %d: %s", q, resp.StatusCode, body)
				}
				if string(body) != string(want[q]) {
					t.Fatalf("q=%q over %d shards diverged from the single snapshot:\n%s\nvs\n%s",
						q, shards, body, want[q])
				}
				if got := resp.Header.Get(HeaderShards); got != fmt.Sprintf("%d/%d", shards, shards) {
					t.Fatalf("q=%q: %s = %q, want %d/%d", q, HeaderShards, got, shards, shards)
				}
			}
			if got := reg.Counter("router.fanout.partial").Value(); got != 0 {
				t.Fatalf("healthy fleet recorded %d partial answers", got)
			}
		})
	}
}

// TestShardedMatchesSingleInProcess repeats the differential check with
// in-process LocalBackends (no HTTP, no JSON round-trip), comparing the
// merged results structurally against query.Server.Search — scores must
// be bit-equal float64s, not approximately equal.
func TestShardedMatchesSingleInProcess(t *testing.T) {
	const k = 10
	graphs, pr := crawlCorpus(t, 16, 77)
	queries := webapp.Queries()[:40]

	loadQS := func(dir string) *query.Server {
		snap, _, err := serve.LoadSnapshot(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		return query.NewServer(snap, query.CacheOptions{})
	}
	singleQS := loadQS(publishPartitioned(t, graphs, pr, 1)[0])

	for _, shards := range []int{2, 4} {
		dirs := publishPartitioned(t, graphs, pr, shards)
		topo := make([][]Backend, shards)
		for i, dir := range dirs {
			topo[i] = []Backend{LocalBackend{QS: loadQS(dir)}}
		}
		rt, err := New(Config{Shards: topo})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			wantRes, _, _ := singleQS.Search(context.Background(), q, k)
			m := mustSearch(t, rt, context.Background(), q, k)
			if len(m.Results) != len(wantRes) {
				t.Fatalf("q=%q shards=%d: %d results, want %d", q, shards, len(m.Results), len(wantRes))
			}
			for i := range wantRes {
				g, w := m.Results[i], wantRes[i]
				if g.URL != w.URL || g.State != w.State || g.Score != w.Score || g.Snippet != w.Snippet {
					t.Fatalf("q=%q shards=%d rank %d:\n got %+v\nwant %+v", q, shards, i, g, w)
				}
			}
		}
	}
}

// TestPartialResultOneShardDown is the degraded-fleet acceptance test:
// a 4-shard fleet with one shard entirely down still answers 200, says
// so in X-Ajaxserve-Shards, and counts the partial answer.
func TestPartialResultOneShardDown(t *testing.T) {
	graphs, pr := crawlCorpus(t, 16, 55)
	dirs := publishPartitioned(t, graphs, pr, 4)
	topo := make([][]Backend, 4)
	var downTS *httptest.Server
	for i, dir := range dirs {
		ts := newServeServer(t, dir)
		if i == 2 {
			downTS = ts
		}
		topo[i] = []Backend{&HTTPBackend{BaseURL: ts.URL}}
	}
	downTS.Close() // shard 2's only replica is gone before any query

	rt, err := New(Config{Shards: topo, Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rs := NewServer(rt, ServerConfig{}, obs.New(reg, nil))
	rts := httptest.NewServer(rs.Handler())
	defer rts.Close()

	resp, body := httpGet(t, rts.URL+searchPath("music", 10))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded fleet: status %d, want 200: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(HeaderShards); got != "3/4" {
		t.Fatalf("%s = %q, want 3/4", HeaderShards, got)
	}
	if !strings.Contains(string(body), `"results"`) {
		t.Fatalf("degraded body lost the result payload: %s", body)
	}
	if got := reg.Counter("router.fanout.partial").Value(); got != 1 {
		t.Fatalf("router.fanout.partial = %d, want 1", got)
	}
	if got := reg.Counter("router.fanout.shard_errors").Value(); got == 0 {
		t.Fatal("router.fanout.shard_errors never incremented")
	}

	// The same fleet with partial results disabled refuses instead.
	rtStrict, err := New(Config{Shards: topo, Partial: false})
	if err != nil {
		t.Fatal(err)
	}
	rsStrict := NewServer(rtStrict, ServerConfig{}, obs.New(nil, nil))
	rtsStrict := httptest.NewServer(rsStrict.Handler())
	defer rtsStrict.Close()
	resp, _ = httpGet(t, rtsStrict.URL+searchPath("music", 10))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("strict fleet: status %d, want 502", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderShards); got != "3/4" {
		t.Fatalf("strict %s = %q, want 3/4", HeaderShards, got)
	}
}
