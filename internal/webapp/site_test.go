package webapp

import (
	"context"
	"strings"
	"testing"
	"testing/quick"

	"ajaxcrawl/internal/browser"
	"ajaxcrawl/internal/fetch"
)

func newTestSite(videos int) *Site {
	return New(DefaultConfig(videos, 42))
}

func TestDeterministicGeneration(t *testing.T) {
	a := newTestSite(50)
	b := newTestSite(50)
	for i := 0; i < 50; i++ {
		va, vb := a.Video(i), b.Video(i)
		if va.ID != vb.ID || va.Title != vb.Title || len(va.Pages) != len(vb.Pages) {
			t.Fatalf("video %d differs between equal-seed sites", i)
		}
		for p := range va.Pages {
			for c := range va.Pages[p] {
				if va.Pages[p][c] != vb.Pages[p][c] {
					t.Fatalf("comment %d/%d/%d differs", i, p, c)
				}
			}
		}
	}
	// Different seed differs (with overwhelming probability).
	c := New(DefaultConfig(50, 43))
	if c.Video(0).ID == a.Video(0).ID && c.Video(0).Title == a.Video(0).Title {
		t.Fatalf("different seeds produced identical content")
	}
}

func TestLazyGenerationOrderIndependence(t *testing.T) {
	a := newTestSite(30)
	b := newTestSite(30)
	// Access in different orders; content must match.
	for i := 29; i >= 0; i-- {
		a.Video(i)
	}
	for i := 0; i < 30; i++ {
		if a.Video(i).Title != b.Video(i).Title {
			t.Fatalf("access order changed generation at %d", i)
		}
	}
}

func TestUniqueIDs(t *testing.T) {
	s := newTestSite(500)
	seen := map[string]bool{}
	for _, id := range s.VideoIDs() {
		if len(id) != 11 {
			t.Fatalf("id %q not 11 chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestPageCountDistribution(t *testing.T) {
	s := newTestSite(2000)
	st := s.DatasetStats(2000)
	if st.Videos != 2000 {
		t.Fatalf("videos = %d", st.Videos)
	}
	one := st.PageHistogram[1]
	if one*100 < 2000*25 {
		t.Fatalf("too few single-page videos: %d/2000", one)
	}
	// Heavy tail exists: some videos reach the cap.
	if st.PageHistogram[11] == 0 {
		t.Fatalf("no videos at the page cap")
	}
	// Mean states per video should land near the paper's 4.16.
	mean := float64(st.TotalStates) / 2000
	if mean < 3.0 || mean > 5.5 {
		t.Fatalf("mean states per video = %.2f, want ~4.2", mean)
	}
	// Monotone-ish decreasing head: 1 page most common.
	if st.PageHistogram[1] <= st.PageHistogram[2] {
		t.Fatalf("histogram head not decreasing: %v", st.PageHistogram)
	}
}

func TestRelatedLinks(t *testing.T) {
	s := newTestSite(100)
	v := s.Video(0)
	if len(v.Related) != s.Config().RelatedPerVideo {
		t.Fatalf("related = %d", len(v.Related))
	}
	seen := map[string]bool{v.ID: true}
	for _, rid := range v.Related {
		if seen[rid] {
			t.Fatalf("duplicate/self related link %q", rid)
		}
		seen[rid] = true
		if s.LookupVideo(rid) == nil {
			t.Fatalf("related link to unknown video %q", rid)
		}
	}
}

func TestQueriesWorkload(t *testing.T) {
	qs := Queries()
	if len(qs) != 100 {
		t.Fatalf("want 100 queries, got %d", len(qs))
	}
	if qs[0] != "wow" || qs[3] != "our song" || qs[10] != "low" {
		t.Fatalf("paper queries not in order: %v", qs[:11])
	}
	seen := map[string]bool{}
	for _, q := range qs {
		if seen[q] {
			t.Fatalf("duplicate query %q", q)
		}
		seen[q] = true
	}
}

func TestQueryOccurrencesShape(t *testing.T) {
	s := newTestSite(300)
	first, all := s.QueryOccurrences("wow", 300)
	if all == 0 {
		t.Fatalf("planted query 'wow' never occurs")
	}
	if first >= all {
		t.Fatalf("first-page occurrences (%d) must be < all-pages (%d)", first, all)
	}
	// The all/first ratio should be well above 1 (Table 7.4 shape).
	if float64(all)/float64(first+1) < 2 {
		t.Fatalf("all/first ratio too low: %d/%d", all, first)
	}
}

func TestHandlerWatchAndComments(t *testing.T) {
	s := newTestSite(10)
	f := &fetch.HandlerFetcher{Handler: s.Handler()}
	v := s.Video(0)

	resp, err := f.Fetch(context.Background(), WatchURL(v.ID))
	if err != nil || resp.Status != 200 {
		t.Fatalf("watch fetch: %v %v", resp, err)
	}
	body := string(resp.Body)
	if !strings.Contains(body, "recent_comments") || !strings.Contains(body, "getUrlXMLResponseAndFillDiv") {
		t.Fatalf("watch page missing structure")
	}
	// Fragment endpoint.
	if len(v.Pages) > 1 {
		resp, err = f.Fetch(context.Background(), CommentsURL(v.ID, 2))
		if err != nil || resp.Status != 200 {
			t.Fatalf("comments fetch: %v %v", resp, err)
		}
		if !strings.Contains(string(resp.Body), `data-page="2"`) {
			t.Fatalf("fragment missing page marker: %s", resp.Body)
		}
	}
	// Errors.
	if resp, _ := f.Fetch(context.Background(), "/watch?v=doesnotexist"); resp.Status != 404 {
		t.Fatalf("unknown video should 404")
	}
	if resp, _ := f.Fetch(context.Background(), CommentsURL(v.ID, 999)); resp.Status != 400 {
		t.Fatalf("out-of-range page should 400")
	}
	if resp, _ := f.Fetch(context.Background(), "/nope"); resp.Status != 404 {
		t.Fatalf("unknown path should 404")
	}
	// Index page.
	resp, err = f.Fetch(context.Background(), "/")
	if err != nil || resp.Status != 200 || !strings.Contains(string(resp.Body), "/watch?v=") {
		t.Fatalf("index page broken: %v %v", resp, err)
	}
}

// TestBrowserDrivesPagination is the end-to-end check that the synthetic
// site behaves like the thesis's YouTube page under the emulated browser:
// clicking "next" swaps the comment box content via XHR, and navigating
// back to page 1 reproduces the initial state bit-for-bit (hash-equal).
func TestBrowserDrivesPagination(t *testing.T) {
	s := newTestSite(40)
	// Find a video with at least 3 pages.
	var v *Video
	for i := 0; i < s.NumVideos(); i++ {
		if len(s.Video(i).Pages) >= 3 {
			v = s.Video(i)
			break
		}
	}
	if v == nil {
		t.Skip("no multi-page video in sample")
	}
	p := browser.NewPage(&fetch.HandlerFetcher{Handler: s.Handler()})
	if err := p.Load(context.Background(), WatchURL(v.ID)); err != nil {
		t.Fatal(err)
	}
	if err := p.RunOnLoad(context.Background()); err != nil {
		t.Fatal(err)
	}
	h1 := p.Hash()

	evs := p.Events(nil)
	if len(evs) == 0 {
		t.Fatalf("no events on multi-page video")
	}
	var next browser.Event
	found := false
	for _, e := range evs {
		if e.ID == "nextPage" {
			next, found = e, true
			break
		}
	}
	if !found {
		t.Fatalf("no next event: %v", evs)
	}
	changed, err := p.Trigger(context.Background(), next)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatalf("next did not change state")
	}
	h2 := p.Hash()
	if h2 == h1 {
		t.Fatalf("state hash unchanged after next")
	}
	// Now click prev: must return exactly to the initial state.
	var prev browser.Event
	found = false
	for _, e := range p.Events(nil) {
		if e.ID == "prevPage" {
			prev, found = e, true
			break
		}
	}
	if !found {
		t.Fatalf("page 2 has no prev event")
	}
	if _, err := p.Trigger(context.Background(), prev); err != nil {
		t.Fatal(err)
	}
	if p.Hash() != h1 {
		t.Fatalf("prev did not reproduce the initial state")
	}
	if p.NetworkCalls != 2 {
		t.Fatalf("network calls = %d, want 2", p.NetworkCalls)
	}
}

// TestFragmentEqualsInlinedFirstPage pins the invariant duplicate
// detection relies on: the /comments p=1 fragment and the watch page's
// inlined comment box parse to identical content.
func TestFragmentEqualsInlinedFirstPage(t *testing.T) {
	s := newTestSite(5)
	v := s.Video(0)
	frag := s.RenderCommentFragment(v, 1)
	page := s.RenderWatchPage(v)
	if !strings.Contains(page, frag) {
		t.Fatalf("watch page does not inline the p=1 fragment verbatim")
	}
}

// Property: every comment page of every video renders to a fragment that
// differs from every other page of the same video (states are distinct).
func TestPropertyDistinctPageFragments(t *testing.T) {
	s := newTestSite(60)
	f := func(raw uint8) bool {
		v := s.Video(int(raw) % s.NumVideos())
		seen := map[string]bool{}
		for p := 1; p <= len(v.Pages); p++ {
			fr := s.RenderCommentFragment(v, p)
			if seen[fr] {
				return false
			}
			seen[fr] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetStatsBounds(t *testing.T) {
	s := newTestSite(10)
	st := s.DatasetStats(0) // 0 means all
	if st.Videos != 10 {
		t.Fatalf("DatasetStats(0) videos = %d", st.Videos)
	}
	st = s.DatasetStats(3)
	if st.Videos != 3 {
		t.Fatalf("DatasetStats(3) videos = %d", st.Videos)
	}
}

func TestSuggestEndpoint(t *testing.T) {
	cfg := DefaultConfig(5, 3)
	cfg.WithSearchBox = true
	s := New(cfg)
	f := &fetch.HandlerFetcher{Handler: s.Handler()}

	resp, err := f.Fetch(context.Background(), "/suggest?q=wo")
	if err != nil || resp.Status != 200 {
		t.Fatalf("suggest fetch: %v %v", resp, err)
	}
	if !strings.Contains(string(resp.Body), "wow") {
		t.Fatalf("suggestions for 'wo' missing wow: %s", resp.Body)
	}
	resp, _ = f.Fetch(context.Background(), "/suggest?q=zzz")
	if !strings.Contains(string(resp.Body), "no suggestions") {
		t.Fatalf("unmatched prefix should say so: %s", resp.Body)
	}
	resp, _ = f.Fetch(context.Background(), "/suggest?q=")
	if !strings.Contains(string(resp.Body), "no suggestions") {
		t.Fatalf("empty prefix should yield none: %s", resp.Body)
	}
	// Without the search box the endpoint does not exist.
	plain := New(DefaultConfig(5, 3))
	pf := &fetch.HandlerFetcher{Handler: plain.Handler()}
	if resp, _ := pf.Fetch(context.Background(), "/suggest?q=wo"); resp.Status != 404 {
		t.Fatalf("suggest should 404 without search box, got %d", resp.Status)
	}
	// Watch pages carry the box only when configured.
	withBox := s.RenderWatchPage(s.Video(0))
	if !strings.Contains(withBox, `id="search"`) {
		t.Fatalf("search box missing from watch page")
	}
	without := plain.RenderWatchPage(plain.Video(0))
	if strings.Contains(without, `id="search"`) {
		t.Fatalf("search box present without config")
	}
}

func TestRobotsAjaxEndpoint(t *testing.T) {
	cfg := DefaultConfig(5, 3)
	cfg.AdvertiseStates = 4
	s := New(cfg)
	f := &fetch.HandlerFetcher{Handler: s.Handler()}
	resp, err := f.Fetch(context.Background(), "/robots-ajax.txt")
	if err != nil || resp.Status != 200 {
		t.Fatalf("robots fetch: %v %v", resp, err)
	}
	if !strings.Contains(string(resp.Body), "ajax-states /watch 4") {
		t.Fatalf("robots content: %s", resp.Body)
	}
	plain := New(DefaultConfig(5, 3))
	pf := &fetch.HandlerFetcher{Handler: plain.Handler()}
	if resp, _ := pf.Fetch(context.Background(), "/robots-ajax.txt"); resp.Status != 404 {
		t.Fatalf("robots should 404 when not advertised, got %d", resp.Status)
	}
}

// TestNoisyDecorMutatesOnEvents pins the noisy-app workload: with
// NoisyDecor on, every tracked event rewrites the decor strip
// (timestamp/view-counter/ad-slot), so returning to a previously seen
// comment page no longer reproduces its exact DOM — the state explosion
// near-duplicate merging exists to collapse. Without the flag the page
// carries no decor and stays byte-stable.
func TestNoisyDecorMutatesOnEvents(t *testing.T) {
	cfg := DefaultConfig(30, 7)
	cfg.NoisyDecor = true
	s := New(cfg)
	var v *Video
	for i := 0; i < s.NumVideos(); i++ {
		if len(s.Video(i).Pages) >= 2 {
			v = s.Video(i)
			break
		}
	}
	if v == nil {
		t.Skip("no multi-page video in sample")
	}
	p := browser.NewPage(&fetch.HandlerFetcher{Handler: s.Handler()})
	if err := p.Load(context.Background(), WatchURL(v.ID)); err != nil {
		t.Fatal(err)
	}
	if err := p.RunOnLoad(context.Background()); err != nil {
		t.Fatal(err)
	}
	// onload runs urchinTracker once: trackCount=1 → tick-13, 4918
	// views, ad slot 9. The three spans concatenate into one token.
	if text := p.Doc.VisibleText(); !strings.Contains(text, "tick-13.views-4918.ad-9") {
		t.Fatalf("initial decor missing from %q", text)
	}
	h1 := p.Hash()

	trigger := func(id string) {
		t.Helper()
		for _, e := range p.Events(nil) {
			if e.ID == id {
				if _, err := p.Trigger(context.Background(), e); err != nil {
					t.Fatal(err)
				}
				return
			}
		}
		t.Fatalf("no %s event", id)
	}
	trigger("nextPage")
	if text := p.Doc.VisibleText(); !strings.Contains(text, "tick-26") {
		t.Fatalf("decor did not advance on next: %q", text)
	}
	trigger("prevPage")
	// Same comment page as the initial state, different decor tick —
	// the exact hash must differ even though the content matches.
	if p.Hash() == h1 {
		t.Fatalf("noisy revisit reproduced the initial hash")
	}
	if text := p.Doc.VisibleText(); !strings.Contains(text, "Comments (page 1 of") {
		t.Fatalf("prev did not return to page 1: %q", text)
	}

	// Without the flag: no decor markup (the shared script's decorate()
	// no-ops when the spans are absent).
	plain := New(DefaultConfig(5, 7))
	if html := plain.RenderWatchPage(plain.Video(0)); strings.Contains(html, `id="decor"`) {
		t.Fatalf("decor rendered without NoisyDecor")
	}
}
