package webapp

// The text corpus for the synthetic site: a Zipf-weighted vocabulary for
// filler comment text, author names, title words, and the query workload.
// The first queries are the ones Table 7.4 of the thesis reports (taken
// from the era's most popular YouTube queries); the rest of the
// 100-query set is generated deterministically from topic words, mirroring
// the thesis's "100 queries in total".

// vocabulary is the filler-word list; sampling is Zipf-like (rank-
// weighted), so low-rank words dominate comment text, as in real text.
var vocabulary = []string{
	"the", "i", "this", "is", "so", "love", "video", "it", "you", "that",
	"was", "great", "my", "and", "a", "to", "of", "in", "for", "on",
	"really", "like", "just", "not", "but", "what", "when", "who", "how", "why",
	"awesome", "amazing", "cool", "nice", "best", "ever", "seen", "watch", "again", "music",
	"song", "band", "guitar", "drums", "voice", "singing", "concert", "live", "album", "track",
	"first", "second", "time", "here", "there", "people", "everyone", "nobody", "anyone", "friend",
	"lol", "haha", "omg", "wtf", "thanks", "please", "check", "channel", "subscribe", "comment",
	"good", "bad", "better", "worse", "worst", "favorite", "new", "old", "classic", "modern",
	"beautiful", "perfect", "terrible", "boring", "epic", "legend", "genius", "talent", "skill", "style",
	"remember", "forget", "never", "always", "sometimes", "often", "today", "yesterday", "tomorrow", "night",
	"day", "year", "week", "month", "hour", "minute", "moment", "forever", "history", "future",
	"school", "work", "home", "car", "city", "country", "world", "earth", "space", "star",
	"movie", "film", "scene", "actor", "director", "camera", "light", "sound", "effect", "edit",
	"game", "play", "player", "team", "goal", "score", "win", "lose", "match", "league",
	"cat", "dog", "baby", "kid", "girl", "boy", "man", "woman", "mother", "father",
	"laugh", "cry", "smile", "wave", "jump", "run", "walk", "sit", "stand", "fall",
	"red", "blue", "green", "black", "white", "gold", "silver", "dark", "bright", "color",
	"one", "two", "three", "four", "five", "ten", "hundred", "thousand", "million", "billion",
	"part", "full", "version", "original", "cover", "remix", "intro", "outro", "chorus", "verse",
	"true", "false", "real", "fake", "right", "wrong", "same", "different", "whole", "half",
	"feel", "think", "know", "believe", "hope", "wish", "want", "need", "have", "get",
	"make", "made", "making", "done", "doing", "start", "stop", "begin", "end", "finish",
	"top", "bottom", "left", "side", "front", "back", "middle", "center", "edge", "corner",
	"big", "small", "huge", "tiny", "long", "short", "tall", "wide", "deep", "high",
	"hard", "soft", "easy", "tough", "simple", "complex", "fast", "slow", "quick", "late",
}

// authorNames provides comment author handles.
var authorNames = []string{
	"musicfan88", "xXshadowXx", "guitarhero", "sk8terboi", "melodymaker",
	"rockstar2008", "quietlistener", "bassline", "drumloop", "vinylhead",
	"concertgoer", "radioghost", "stereotype", "ampedup", "riffraff",
	"trebleclef", "echochamber", "feedbackloop", "vibecheck", "headbanger",
	"popprincess", "indiekid", "metalhead", "jazzhands", "bluesbrother",
	"synthwave", "chiptune", "lofibeats", "acousticsoul", "discoball",
	"turntable", "mixtape", "playlist", "shuffleplay", "repeatone",
	"maxvolume", "mutebutton", "equalizer", "subwoofer", "tweeter",
	"frontrow", "backstage", "greenroom", "soundcheck", "encore",
	"openingact", "headliner", "roadie", "groupie", "promoter",
	"firstcomment", "lurker2007", "oldaccount", "newuser123", "verifiedfan",
	"skeptic42", "believer7", "critic101", "reviewer9", "casualviewer",
}

// titleWords builds video titles (2–5 words).
var titleWords = []string{
	"official", "video", "live", "acoustic", "session", "tour", "studio",
	"interview", "behind", "scenes", "exclusive", "premiere", "trailer",
	"episode", "part", "one", "two", "three", "final", "extended",
	"morcheeba", "enjoy", "ride", "mysterious", "journey", "midnight",
	"summer", "winter", "ocean", "mountain", "river", "skyline", "horizon",
	"echo", "whisper", "thunder", "lightning", "rainbow", "shadow", "light",
	"dreams", "memories", "stories", "secrets", "wonders", "legends",
}

// paperQueries are the queries of Table 7.4, in the thesis's order.
var paperQueries = []string{
	"wow",
	"dance",
	"funny",
	"our song",
	"sexy can i",
	"american idol",
	"kiss",
	"fight",
	"no air",
	"chris brown",
	"low",
}

// queryTopics generate the remainder of the 100-query workload as
// deterministic one- and two-word combinations.
var queryTopics = []string{
	"music", "love", "live", "guitar", "cover", "remix", "concert",
	"best", "epic", "classic", "dance", "beat", "song", "voice",
	"drum", "bass", "piano", "acoustic", "studio", "tour",
	"laugh", "cry", "smile", "baby", "cat", "dog", "game", "goal",
	"win", "team", "movie", "scene", "star", "world", "night", "day",
	"dream", "memory", "story", "secret", "legend", "wonder", "fire",
	"water", "gold",
}

// Queries returns the full 100-query workload: the 11 paper queries
// followed by generated ones, deterministic for a given call.
func Queries() []string {
	out := make([]string, 0, 100)
	seen := make(map[string]bool, 100)
	add := func(q string) {
		if !seen[q] && len(out) < 100 {
			seen[q] = true
			out = append(out, q)
		}
	}
	for _, q := range paperQueries {
		add(q)
	}
	// Single-topic queries.
	for _, t := range queryTopics {
		if len(out) >= 70 {
			break
		}
		add(t)
	}
	// Two-word queries pairing topics at increasing offsets until the
	// workload reaches 100 entries.
	for off := 1; len(out) < 100 && off < len(queryTopics); off++ {
		for i := 0; len(out) < 100 && i+off < len(queryTopics); i++ {
			add(queryTopics[i] + " " + queryTopics[i+off])
		}
	}
	return out
}

// plantable are the phrases planted into comment text so queries have
// controlled hit rates: paper queries get the highest plant weight (they
// are the "most popular" ones), generated queries a tail weight.
func plantable() []string { return Queries() }
