package webapp

import (
	"context"
	"strings"
	"testing"

	"ajaxcrawl/internal/browser"
	"ajaxcrawl/internal/fetch"
)

func newsFetcher(articles int) (*NewsSite, fetch.Fetcher) {
	n := NewNews(NewsConfig{Articles: articles, Seed: 9, Sections: 3})
	return n, &fetch.HandlerFetcher{Handler: n.Handler()}
}

func TestNewsSiteServes(t *testing.T) {
	n, f := newsFetcher(5)
	resp, err := f.Fetch(context.Background(), n.ArticleURL(0))
	if err != nil || resp.Status != 200 {
		t.Fatalf("article fetch: %v %v", resp, err)
	}
	body := string(resp.Body)
	if !strings.Contains(body, "expandSection") || !strings.Contains(body, "loadReactions") {
		t.Fatalf("article missing scripts")
	}
	// Endpoints.
	if resp, _ := f.Fetch(context.Background(), "/section?id=0&s=1"); resp.Status != 200 {
		t.Fatalf("section endpoint broken")
	}
	if resp, _ := f.Fetch(context.Background(), "/section?id=0&s=99"); resp.Status != 400 {
		t.Fatalf("bad section should 400")
	}
	if resp, _ := f.Fetch(context.Background(), "/reactions?id=0"); resp.Status != 200 {
		t.Fatalf("reactions endpoint broken")
	}
	if resp, _ := f.Fetch(context.Background(), "/article?id=99"); resp.Status != 404 {
		t.Fatalf("unknown article should 404")
	}
	if resp, _ := f.Fetch(context.Background(), "/"); resp.Status != 200 {
		t.Fatalf("index broken")
	}
}

func TestNewsDeterministic(t *testing.T) {
	a := NewNews(NewsConfig{Articles: 5, Seed: 9, Sections: 3})
	b := NewNews(NewsConfig{Articles: 5, Seed: 9, Sections: 3})
	if a.renderArticle(2) != b.renderArticle(2) {
		t.Fatalf("equal seeds must render identically")
	}
	c := NewNews(NewsConfig{Articles: 5, Seed: 10, Sections: 3})
	if a.renderArticle(2) == c.renderArticle(2) {
		t.Fatalf("different seeds should differ")
	}
}

// TestNewsLatticeStates drives the article with the emulated browser:
// expanding sections in different orders reaches different intermediate
// states but identical final states — the lattice structure.
func TestNewsLatticeStates(t *testing.T) {
	n, f := newsFetcher(3)
	load := func() *browser.Page {
		p := browser.NewPage(f)
		if err := p.Load(context.Background(), n.ArticleURL(0)); err != nil {
			t.Fatal(err)
		}
		return p
	}
	expand := func(p *browser.Page, which string) {
		for _, ev := range p.Events(nil) {
			if strings.Contains(ev.Code, which) {
				if _, err := p.Trigger(context.Background(), ev); err != nil {
					t.Fatal(err)
				}
				return
			}
		}
		t.Fatalf("no event matching %q", which)
	}

	// Order A: section 0 then 1. Order B: 1 then 0.
	pa := load()
	expand(pa, "expandSection(0, 0)")
	midA := pa.Hash()
	expand(pa, "expandSection(0, 1)")
	finalA := pa.Hash()

	pb := load()
	expand(pb, "expandSection(0, 1)")
	midB := pb.Hash()
	expand(pb, "expandSection(0, 0)")
	finalB := pb.Hash()

	if midA == midB {
		t.Fatalf("different expansion orders should differ mid-way")
	}
	if finalA != finalB {
		t.Fatalf("full expansion must converge to the same state")
	}
}
