// Package webapp implements the synthetic YouTube-like AJAX web site the
// experiments crawl — the stand-in for the live YouTube subset the thesis
// evaluates on (DESIGN.md, Substitutions).
//
// The site is generated deterministically from a seed. Every video has a
// watch page with the structure the thesis describes (Fig. 1.1): title,
// player placeholder, related-video hyperlinks, and a comment box whose
// additional pages load via XMLHttpRequest from /comments without
// changing the URL. Pagination offers prev/next plus direct jumps to the
// neighbouring pages, so distinct events map to the same server call —
// the redundancy the hot-node policy exploits (ch. 4). All comment
// fetches funnel through one JavaScript function,
// getUrlXMLResponseAndFillDiv, the page's single hot node (Table 4.2).
package webapp

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
)

// Config parameterizes site generation.
type Config struct {
	// Videos is the number of videos in the site.
	Videos int
	// Seed drives all content generation; equal seeds give identical sites.
	Seed int64
	// MaxCommentPages caps comment pages per video (including the first).
	// The thesis restricts crawling to 10 additional pages, i.e. 11 total.
	MaxCommentPages int
	// CommentsPerPage is the comment-box page size (YouTube: 10).
	CommentsPerPage int
	// RelatedPerVideo is the number of related-video hyperlinks per page.
	RelatedPerVideo int
	// PlantRate is the probability that a comment embeds a query phrase.
	PlantRate float64
	// AdvertiseStates, when positive, makes the site serve a
	// /robots-ajax.txt advertising this state granularity for /watch
	// pages (the thesis's §4.3 prediction).
	AdvertiseStates int
	// WithSearchBox adds a Google-Suggest-style search input to every
	// watch page (an AJAX form, the forms future-work of thesis ch. 10).
	// Off by default so the chapter-7 experiments keep the thesis's
	// no-forms assumption (§4.3).
	WithSearchBox bool
	// WithLikeButton adds an AJAX "like" counter to every watch page.
	// Every click produces a state differing in a single number — the
	// "very granular events" state explosion of thesis challenge #3,
	// used by the near-duplicate-merging experiments. Off by default.
	WithLikeButton bool
	// NoisyDecor adds a decoration strip (render timestamp, view
	// counter, rotating ad slot) to every watch page, mutated
	// client-side on every tracked event. The decor makes revisited
	// states differ in a few tokens of chrome — the timestamps /
	// counters / ad slots of ROADMAP item 1 — so the exact-hash model
	// explodes while near-duplicate merging collapses it. Off by
	// default.
	NoisyDecor bool
}

// DefaultConfig returns the configuration used by the experiments, sized
// down by the caller as needed.
func DefaultConfig(videos int, seed int64) Config {
	return Config{
		Videos:          videos,
		Seed:            seed,
		MaxCommentPages: 11,
		CommentsPerPage: 10,
		RelatedPerVideo: 8,
		PlantRate:       0.18,
	}
}

// Comment is one user comment.
type Comment struct {
	Author string
	Text   string
}

// Video is one generated video with all its comment pages.
type Video struct {
	ID      string
	Index   int
	Title   string
	Related []string    // related video IDs (hyperlinks)
	Pages   [][]Comment // comment pages, Pages[0] shown by default
}

// Site is a deterministic synthetic video site.
type Site struct {
	cfg Config
	ids []string
	idx map[string]int

	mu    sync.Mutex
	cache map[int]*Video
}

// New generates a Site. Only the ID table is materialized eagerly; video
// content is derived lazily (and deterministically) per video.
func New(cfg Config) *Site {
	if cfg.Videos <= 0 {
		cfg.Videos = 1
	}
	if cfg.MaxCommentPages <= 0 {
		cfg.MaxCommentPages = 11
	}
	if cfg.CommentsPerPage <= 0 {
		cfg.CommentsPerPage = 10
	}
	if cfg.RelatedPerVideo < 0 {
		cfg.RelatedPerVideo = 0
	}
	s := &Site{
		cfg:   cfg,
		ids:   make([]string, cfg.Videos),
		idx:   make(map[string]int, cfg.Videos),
		cache: make(map[int]*Video),
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	for i := range s.ids {
		for {
			b := make([]byte, 11)
			for j := range b {
				b[j] = alphabet[r.Intn(len(alphabet))]
			}
			id := string(b)
			if _, dup := s.idx[id]; !dup {
				s.ids[i] = id
				s.idx[id] = i
				break
			}
		}
	}
	return s
}

// Config returns the generation parameters.
func (s *Site) Config() Config { return s.cfg }

// NumVideos returns the number of videos.
func (s *Site) NumVideos() int { return len(s.ids) }

// VideoID returns the ID of the i-th video.
func (s *Site) VideoID(i int) string { return s.ids[i] }

// VideoIDs returns all IDs in generation order.
func (s *Site) VideoIDs() []string {
	out := make([]string, len(s.ids))
	copy(out, s.ids)
	return out
}

// LookupVideo returns the video with the given ID, or nil.
func (s *Site) LookupVideo(id string) *Video {
	i, ok := s.idx[id]
	if !ok {
		return nil
	}
	return s.Video(i)
}

// Video returns the i-th video, generating it on first access.
func (s *Site) Video(i int) *Video {
	s.mu.Lock()
	if v, ok := s.cache[i]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	v := s.generate(i)
	s.mu.Lock()
	s.cache[i] = v
	s.mu.Unlock()
	return v
}

// generate builds video i from a per-video RNG so that access order does
// not affect content.
func (s *Site) generate(i int) *Video {
	r := rand.New(rand.NewSource(s.cfg.Seed*1_000_003 + int64(i)*7_919 + 17))
	v := &Video{ID: s.ids[i], Index: i}

	// Title: 2-5 title words; capitalized first word.
	nTitle := 2 + r.Intn(4)
	words := make([]string, nTitle)
	for j := range words {
		words[j] = titleWords[r.Intn(len(titleWords))]
	}
	words[0] = strings.Title(words[0]) //nolint:staticcheck // ASCII corpus
	v.Title = strings.Join(words, " ")

	// Related links: a window around i plus random jumps, like the
	// breadth-first "related videos" discovery the thesis uses to build
	// YouTube10000.
	n := s.cfg.RelatedPerVideo
	seen := map[int]bool{i: true}
	for len(v.Related) < n && len(seen) < s.NumVideos() {
		var j int
		if r.Intn(2) == 0 {
			j = (i + 1 + r.Intn(5)) % s.NumVideos()
		} else {
			j = r.Intn(s.NumVideos())
		}
		if seen[j] {
			continue
		}
		seen[j] = true
		v.Related = append(v.Related, s.ids[j])
	}

	// Comment pages: heavy-tailed count matching Figure 7.1 — most
	// videos have a single page, a long tail reaches the cap.
	pages := s.samplePageCount(r)
	v.Pages = make([][]Comment, pages)
	for p := range v.Pages {
		v.Pages[p] = s.generatePage(r, p)
	}
	return v
}

// pageCountWeights is the distribution of comment-page counts (index 0 =
// one page). Chosen to reproduce the shape of Figure 7.1 and a mean of
// ~4.2 states per video (Table 7.1: 41572 states / 10000 pages).
var pageCountWeights = []float64{0.32, 0.13, 0.09, 0.08, 0.07, 0.06, 0.055, 0.05, 0.05, 0.048, 0.047}

func (s *Site) samplePageCount(r *rand.Rand) int {
	max := s.cfg.MaxCommentPages
	if max > len(pageCountWeights) {
		max = len(pageCountWeights)
	}
	total := 0.0
	for _, w := range pageCountWeights[:max] {
		total += w
	}
	x := r.Float64() * total
	for k, w := range pageCountWeights[:max] {
		x -= w
		if x <= 0 {
			return k + 1
		}
	}
	return max
}

func (s *Site) generatePage(r *rand.Rand, page int) []Comment {
	out := make([]Comment, s.cfg.CommentsPerPage)
	for c := range out {
		out[c] = Comment{
			Author: authorNames[r.Intn(len(authorNames))],
			Text:   s.generateText(r, page),
		}
	}
	return out
}

// generateText produces one comment: Zipf-ish filler words, sometimes
// with a planted query phrase so search experiments have controlled hits.
// Later pages get a slightly higher plant rate, pushing the first-page /
// all-pages occurrence ratio toward the shape of Table 7.4.
func (s *Site) generateText(r *rand.Rand, page int) string {
	n := 5 + r.Intn(14)
	words := make([]string, 0, n+4)
	for j := 0; j < n; j++ {
		words = append(words, zipfWord(r))
	}
	rate := s.cfg.PlantRate
	if page > 0 {
		rate *= 1.5
	}
	if r.Float64() < rate {
		phrases := plantable()
		// Rank-weighted pick: paper queries (low index) dominate.
		k := int(float64(len(phrases)) * r.Float64() * r.Float64())
		if k >= len(phrases) {
			k = len(phrases) - 1
		}
		pos := r.Intn(len(words) + 1)
		words = append(words[:pos], append([]string{phrases[k]}, words[pos:]...)...)
	}
	return strings.Join(words, " ")
}

// zipfWord samples the vocabulary with probability ∝ 1/(rank+4).
func zipfWord(r *rand.Rand) string {
	// Inverse-CDF-free trick: r.Float64()^2 biases toward low ranks.
	x := r.Float64()
	idx := int(x * x * float64(len(vocabulary)))
	if idx >= len(vocabulary) {
		idx = len(vocabulary) - 1
	}
	return vocabulary[idx]
}

// Stats describe the generated dataset (Table 7.1 inputs).
type Stats struct {
	Videos        int
	TotalStates   int // total comment pages across all videos
	PageHistogram []int
}

// DatasetStats walks the first n videos (n ≤ NumVideos) and aggregates
// the distribution Figure 7.1 plots.
func (s *Site) DatasetStats(n int) Stats {
	if n <= 0 || n > s.NumVideos() {
		n = s.NumVideos()
	}
	st := Stats{Videos: n, PageHistogram: make([]int, s.cfg.MaxCommentPages+1)}
	for i := 0; i < n; i++ {
		pages := len(s.Video(i).Pages)
		st.TotalStates += pages
		if pages < len(st.PageHistogram) {
			st.PageHistogram[pages]++
		}
	}
	return st
}

// QueryOccurrences counts, over the first n videos, in how many comments
// a query phrase appears on the first page and on all pages — the two
// columns of Table 7.4. Matching is token-based (whole words, in
// sequence), the same view the indexer has.
func (s *Site) QueryOccurrences(query string, n int) (firstPage, allPages int) {
	if n <= 0 || n > s.NumVideos() {
		n = s.NumVideos()
	}
	qTokens := strings.Fields(strings.ToLower(query))
	if len(qTokens) == 0 {
		return 0, 0
	}
	for i := 0; i < n; i++ {
		v := s.Video(i)
		for p, page := range v.Pages {
			for _, c := range page {
				if containsPhrase(strings.Fields(strings.ToLower(c.Text)), qTokens) {
					allPages++
					if p == 0 {
						firstPage++
					}
				}
			}
		}
	}
	return firstPage, allPages
}

// containsPhrase reports whether tokens contains the phrase as a
// contiguous subsequence.
func containsPhrase(tokens, phrase []string) bool {
	for i := 0; i+len(phrase) <= len(tokens); i++ {
		match := true
		for j, w := range phrase {
			if tokens[i+j] != w {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// WatchURL returns the path of a video's watch page.
func WatchURL(id string) string { return "/watch?v=" + id }

// commentsURL returns the AJAX endpoint for page p (1-based) of a video,
// in the query-string shape the thesis shows in Table 4.3.
func commentsURL(id string, p int) string {
	return fmt.Sprintf("/comments?v=%s&action_get_comments=1&p=%d", id, p)
}
