package webapp

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"ajaxcrawl/internal/dom"
)

// Handler returns the site's HTTP interface:
//
//	GET /                 – index page linking the first videos
//	GET /watch?v=ID       – a video's watch page (HTML + JavaScript)
//	GET /comments?v=&p=   – AJAX fragment: comment page p (1-based)
func (s *Site) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/watch", s.handleWatch)
	mux.HandleFunc("/comments", s.handleComments)
	if s.cfg.WithSearchBox {
		mux.HandleFunc("/suggest", s.handleSuggest)
	}
	if s.cfg.WithLikeButton {
		mux.HandleFunc("/like", s.handleLike)
	}
	if s.cfg.AdvertiseStates > 0 {
		mux.HandleFunc("/robots-ajax.txt", s.handleAjaxRobots)
	}
	return mux
}

// handleAjaxRobots serves the AJAX-granularity hint file (thesis §4.3:
// sites advertising "the possible granularity of search on their pages").
func (s *Site) handleAjaxRobots(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "# AJAX crawl granularity hints\n")
	fmt.Fprintf(w, "ajax-states /watch %d\n", s.cfg.AdvertiseStates)
	fmt.Fprintf(w, "ajax-states / 1\n")
}

func (s *Site) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString("<html><head><title>SimTube</title></head><body><h1>SimTube</h1><ul>")
	n := s.NumVideos()
	if n > 25 {
		n = 25
	}
	for i := 0; i < n; i++ {
		v := s.Video(i)
		fmt.Fprintf(&b, `<li><a href="%s">%s</a></li>`, WatchURL(v.ID), dom.EscapeText(v.Title))
	}
	b.WriteString("</ul></body></html>")
	fmt.Fprint(w, b.String())
}

func (s *Site) handleWatch(w http.ResponseWriter, r *http.Request) {
	v := s.LookupVideo(r.URL.Query().Get("v"))
	if v == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, s.RenderWatchPage(v))
}

func (s *Site) handleComments(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	v := s.LookupVideo(q.Get("v"))
	if v == nil {
		http.NotFound(w, r)
		return
	}
	p, err := strconv.Atoi(q.Get("p"))
	if err != nil || p < 1 || p > len(v.Pages) {
		http.Error(w, "bad page", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, s.RenderCommentFragment(v, p))
}

// watchPageScript is the client-side code of every watch page. It
// mirrors the YouTube code excerpt in thesis §4.4.1: all comment-page
// events funnel into getUrlXMLResponseAndFillDiv, whose inner getUrl
// opens the XMLHttpRequest — the page's single hot node.
const watchPageScript = `
var trackCount = 0;
function showLoading(div_id) {
	var el = document.getElementById(div_id);
	if (el) { el.style.cursor = "wait"; }
}
function getXmlHttpRequest() { return new XMLHttpRequest(); }
function getUrl(url, async) {
	var xmlHttpReq = getXmlHttpRequest();
	xmlHttpReq.open("GET", url, async);
	xmlHttpReq.send(null);
	return xmlHttpReq.responseText;
}
function getUrlXMLResponseAndFillDiv(url, div_id) {
	var resp = getUrl(url, false);
	var div = document.getElementById(div_id);
	div.innerHTML = resp;
	div.style.cursor = "auto";
}
function urchinTracker(page) {
	trackCount = trackCount + 1;
	decorate();
	return trackCount;
}
function decorate() {
	var ts = document.getElementById('decor_timestamp');
	if (ts) {
		ts.innerText = 'tick-' + ((trackCount * 13) % 97);
		document.getElementById('decor_views').innerText = '.views-' + (1000 + (trackCount * 7919) % 4001);
		document.getElementById('decor_ad').innerText = '.ad-' + ((trackCount * 31) % 11);
	}
}
function loadCommentPage(vid, p) {
	showLoading('recent_comments');
	getUrlXMLResponseAndFillDiv('/comments?v=' + vid + '&action_get_comments=1&p=' + p, 'recent_comments');
	urchinTracker('/watch?v=' + vid);
}
function initPage() { urchinTracker('init'); }
function likeVideo(vid) {
	var cur = parseInt(document.getElementById('likecount').innerText);
	getUrlXMLResponseAndFillDiv('/like?v=' + vid + '&n=' + (cur + 1), 'likecount');
}
function suggest(prefix) {
	if (prefix == "") { return; }
	getUrlXMLResponseAndFillDiv('/suggest?q=' + encodeURIComponent(prefix), 'suggestions');
}
`

// RenderWatchPage renders the full HTML document for a video. The first
// comment page is inlined (it is what traditional, JavaScript-disabled
// crawling sees); further pages are reachable only through AJAX events.
func (s *Site) RenderWatchPage(v *Video) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>")
	b.WriteString(dom.EscapeText(v.Title))
	b.WriteString(" - SimTube</title><script type=\"text/javascript\">")
	b.WriteString(watchPageScript)
	b.WriteString("</script></head>\n")
	b.WriteString(`<body onload="initPage()">` + "\n")
	fmt.Fprintf(&b, `<h1 id="video-title">%s</h1>`+"\n", dom.EscapeText(v.Title))
	b.WriteString(`<div id="player">[flash video player]</div>` + "\n")
	if s.cfg.NoisyDecor {
		// The three spans are adjacent on purpose: their texts
		// concatenate into one visible token, so the mutating chrome
		// stays a near-duplicate (a few shingles) of the page it
		// decorates while still changing the exact content hash on
		// every tracked event.
		b.WriteString(`<div id="decor">chrome <span id="decor_timestamp">tick-0</span><span id="decor_views">.views-1000</span><span id="decor_ad">.ad-0</span></div>` + "\n")
	}
	if s.cfg.WithSearchBox {
		b.WriteString(`<div id="searchbox"><input id="search" type="text" onkeyup="suggest(this.value)"><div id="suggestions"></div></div>` + "\n")
	}
	if s.cfg.WithLikeButton {
		fmt.Fprintf(&b, `<div id="likebox"><span class="nav" id="likeBtn" onclick="likeVideo('%s')">like</span> <span id="likecount">0</span> likes</div>`+"\n", v.ID)
	}
	b.WriteString(`<div id="related"><h2>Related Videos</h2><ul>` + "\n")
	for _, rid := range v.Related {
		rv := s.LookupVideo(rid)
		title := rid
		if rv != nil {
			title = rv.Title
		}
		fmt.Fprintf(&b, `<li><a href="%s">%s</a></li>`+"\n", WatchURL(rid), dom.EscapeText(title))
	}
	b.WriteString("</ul></div>\n")
	fmt.Fprintf(&b, `<div id="recent_comments">%s</div>`+"\n", s.RenderCommentFragment(v, 1))
	b.WriteString("</body></html>\n")
	return b.String()
}

// RenderCommentFragment renders comment page p (1-based) of a video —
// the exact bytes /comments serves and the watch page inlines for p = 1,
// so that navigating back to page 1 reproduces the initial state.
func (s *Site) RenderCommentFragment(v *Video, p int) string {
	var b strings.Builder
	total := len(v.Pages)
	fmt.Fprintf(&b, `<div class="comments-page" data-page="%d">`, p)
	fmt.Fprintf(&b, `<h3>Comments (page %d of %d)</h3>`, p, total)
	for _, c := range v.Pages[p-1] {
		fmt.Fprintf(&b, `<div class="comment"><span class="author">%s</span><p>%s</p></div>`,
			dom.EscapeText(c.Author), dom.EscapeText(c.Text))
	}
	b.WriteString(`<div class="pagination">`)
	if p > 1 {
		fmt.Fprintf(&b, `<span class="nav" id="prevPage" onclick="loadCommentPage('%s', %d)">prev</span> `, v.ID, p-1)
	}
	// Direct jumps to the neighbouring pages (YouTube offers the
	// immediately consecutive page numbers, thesis §7.1.1).
	lo, hi := p-3, p+3
	if lo < 1 {
		lo = 1
	}
	if hi > total {
		hi = total
	}
	for q := lo; q <= hi; q++ {
		if q == p {
			fmt.Fprintf(&b, `<b class="cur">%d</b> `, q)
			continue
		}
		fmt.Fprintf(&b, `<span class="nav page" onclick="loadCommentPage('%s', %d)">%d</span> `, v.ID, q, q)
	}
	if p < total {
		fmt.Fprintf(&b, `<span class="nav" id="nextPage" onclick="loadCommentPage('%s', %d)">next</span>`, v.ID, p+1)
	}
	b.WriteString("</div></div>")
	return b.String()
}

// handleSuggest serves query completions for a prefix: the AJAX form
// backend of the optional search box.
func (s *Site) handleSuggest(w http.ResponseWriter, r *http.Request) {
	prefix := strings.ToLower(r.URL.Query().Get("q"))
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString(`<ul class="suggestions">`)
	n := 0
	if prefix != "" {
		for _, q := range Queries() {
			if strings.HasPrefix(q, prefix) {
				fmt.Fprintf(&b, "<li>%s</li>", dom.EscapeText(q))
				n++
				if n >= 5 {
					break
				}
			}
		}
	}
	if n == 0 {
		b.WriteString("<li class=\"none\">no suggestions</li>")
	}
	b.WriteString("</ul>")
	fmt.Fprint(w, b.String())
}

// handleLike echoes the new like count — a stateless AJAX endpoint whose
// every invocation yields a slightly different application state.
func (s *Site) handleLike(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.URL.Query().Get("n"))
	if err != nil || n < 0 {
		http.Error(w, "bad count", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "%d", n)
}

// CommentsURL exposes the AJAX endpoint path for tests and tools.
func CommentsURL(id string, p int) string { return commentsURL(id, p) }
