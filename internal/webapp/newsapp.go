package webapp

// A second synthetic AJAX application: a news site with expandable
// article sections. It exists to show the crawler is not overfit to the
// YouTube comment-pagination shape (the thesis's future work asks for
// "crawling more current AJAX applications"):
//
//   - /article?id=N pages carry collapsed sections ("Read more",
//     "Show analysis", "Reader reactions"), each expanded by an
//     XMLHttpRequest that *appends* content instead of replacing it;
//   - several expand events can fire from the same state, so states form
//     a lattice (subsets of expanded sections) rather than the comment
//     box's linear chain — a structurally different transition graph;
//   - two distinct hot-node functions fetch content (expandSection and
//     loadReactions), unlike the watch page's single hot node.

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"

	"ajaxcrawl/internal/dom"
)

// NewsConfig parameterizes the news-site generator.
type NewsConfig struct {
	// Articles is the number of articles.
	Articles int
	// Seed drives deterministic content generation.
	Seed int64
	// Sections is the number of expandable sections per article.
	Sections int
}

// NewsSite is a deterministic synthetic news application.
type NewsSite struct {
	cfg NewsConfig
}

// NewNews generates a news site.
func NewNews(cfg NewsConfig) *NewsSite {
	if cfg.Articles <= 0 {
		cfg.Articles = 1
	}
	if cfg.Sections <= 0 {
		cfg.Sections = 3
	}
	return &NewsSite{cfg: cfg}
}

// NumArticles returns the number of articles.
func (n *NewsSite) NumArticles() int { return n.cfg.Articles }

// ArticleURL returns the path of article i.
func (n *NewsSite) ArticleURL(i int) string { return fmt.Sprintf("/article?id=%d", i) }

// rng returns the deterministic generator for one article.
func (n *NewsSite) rng(article int) *rand.Rand {
	return rand.New(rand.NewSource(n.cfg.Seed*7_368_787 + int64(article)*104_729 + 3))
}

// headline builds article i's headline.
func (n *NewsSite) headline(i int) string {
	r := n.rng(i)
	w := func() string { return vocabulary[r.Intn(len(vocabulary))] }
	return strings.Title(w()) + " " + w() + " " + w() //nolint:staticcheck // ASCII corpus
}

// sectionText builds the body of one expandable section.
func (n *NewsSite) sectionText(article, section int) string {
	r := n.rng(article*1000 + section + 7)
	words := make([]string, 20+r.Intn(20))
	for i := range words {
		words[i] = zipfWord(r)
	}
	// Plant a query phrase in roughly half the sections so search
	// experiments can target hidden content.
	if r.Intn(2) == 0 {
		phrases := plantable()
		words = append(words, phrases[r.Intn(20)])
	}
	return strings.Join(words, " ")
}

// newsScript is the client-side code: two distinct hot nodes.
const newsScript = `
function fetchInto(url, id) {
	var req = new XMLHttpRequest();
	req.open("GET", url, false);
	req.send(null);
	document.getElementById(id).innerHTML = req.responseText;
}
function expandSection(article, section) {
	fetchInto('/section?id=' + article + '&s=' + section, 'section-' + section);
}
function loadReactions(article) {
	var req = new XMLHttpRequest();
	req.open("GET", '/reactions?id=' + article, false);
	req.send(null);
	document.getElementById('reactions').innerHTML = req.responseText;
}
`

// Handler returns the news site's HTTP interface.
func (n *NewsSite) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		var b strings.Builder
		b.WriteString("<html><head><title>SimNews</title></head><body><h1>SimNews</h1><ul>")
		for i := 0; i < n.cfg.Articles && i < 30; i++ {
			fmt.Fprintf(&b, `<li><a href="%s">%s</a></li>`, n.ArticleURL(i), dom.EscapeText(n.headline(i)))
		}
		b.WriteString("</ul></body></html>")
		fmt.Fprint(w, b.String())
	})
	mux.HandleFunc("/article", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.URL.Query().Get("id"))
		if err != nil || id < 0 || id >= n.cfg.Articles {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, n.renderArticle(id))
	})
	mux.HandleFunc("/section", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		id, err1 := strconv.Atoi(q.Get("id"))
		sec, err2 := strconv.Atoi(q.Get("s"))
		if err1 != nil || err2 != nil || id < 0 || id >= n.cfg.Articles || sec < 0 || sec >= n.cfg.Sections {
			http.Error(w, "bad section", http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, `<div class="expanded">%s</div>`, dom.EscapeText(n.sectionText(id, sec)))
	})
	mux.HandleFunc("/reactions", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.URL.Query().Get("id"))
		if err != nil || id < 0 || id >= n.cfg.Articles {
			http.NotFound(w, r)
			return
		}
		rr := n.rng(id*31 + 11)
		var b strings.Builder
		b.WriteString(`<ul class="reactions">`)
		for i := 0; i < 4; i++ {
			fmt.Fprintf(&b, "<li>%s: %s</li>",
				authorNames[rr.Intn(len(authorNames))],
				dom.EscapeText(n.sectionText(id, 100+i)))
		}
		b.WriteString("</ul>")
		fmt.Fprint(w, b.String())
	})
	return mux
}

// renderArticle renders the initial article state: headline, teaser, and
// collapsed sections with expand controls.
func (n *NewsSite) renderArticle(id int) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>")
	b.WriteString(dom.EscapeText(n.headline(id)))
	b.WriteString(` - SimNews</title><script type="text/javascript">`)
	b.WriteString(newsScript)
	b.WriteString("</script></head><body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", dom.EscapeText(n.headline(id)))
	fmt.Fprintf(&b, `<p class="teaser">%s</p>`+"\n", dom.EscapeText(n.sectionText(id, 999)))
	for s := 0; s < n.cfg.Sections; s++ {
		fmt.Fprintf(&b,
			`<div id="section-%d"><span class="expand" onclick="expandSection(%d, %d)">Read section %d</span></div>`+"\n",
			s, id, s, s+1)
	}
	fmt.Fprintf(&b, `<div id="reactions"><span class="expand" onclick="loadReactions(%d)">Reader reactions</span></div>`+"\n", id)
	// Related articles keep the precrawler busy.
	b.WriteString(`<div id="related"><ul>`)
	r := n.rng(id * 7)
	for i := 0; i < 4; i++ {
		j := r.Intn(n.cfg.Articles)
		fmt.Fprintf(&b, `<li><a href="%s">%s</a></li>`, n.ArticleURL(j), dom.EscapeText(n.headline(j)))
	}
	b.WriteString("</ul></div>\n</body></html>\n")
	return b.String()
}
