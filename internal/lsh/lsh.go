// Package lsh provides a banded locality-sensitive-hash index over
// shingle.Signature vectors, used by the crawler's state admitter to find
// near-duplicate DOM states without comparing every pair.
//
// A signature of n elements is split into b bands of r contiguous rows
// (b·r = n). Each band is hashed into a bucket table; two signatures
// become merge *candidates* if any band hashes identically. For true
// element-agreement s, the candidate probability follows the classic
// s-curve 1-(1-s^r)^b — steep around the threshold the band layout was
// derived for. Candidates are then verified with the exact
// shingle.Signature.Similarity, so false positives cost a comparison but
// never a wrong merge.
//
// Because the admitter's verification metric is *position agreement* (the
// fraction of equal signature elements), this index can offer a stronger
// guarantee than probabilistic LSH: if two signatures agree on a fraction
// ≥ t of their n positions, they disagree on at most d = n-ceil(t·n)
// positions, and by pigeonhole any banding with b ≥ d+1 bands puts at
// least one band entirely inside the agreeing positions. ParamsFor picks
// the smallest divisor of n with b ≥ d+1, so on the verified path the
// index has recall 1.0: it surfaces every pair the brute-force scan would
// merge. See DESIGN.md §5h for the derivation and the threshold→(b,r)
// table.
package lsh

import (
	"fmt"
	"math"
	"sort"

	"ajaxcrawl/internal/shingle"
)

// Params is a band layout: Bands·Rows = signature length.
type Params struct {
	Bands int
	Rows  int
}

func (p Params) String() string { return fmt.Sprintf("%db×%dr", p.Bands, p.Rows) }

// ParamsFor derives the band layout for a similarity threshold t over
// signatures of sigLen elements. It returns the smallest divisor b of
// sigLen such that b ≥ sigLen-ceil(t·sigLen)+1, which is exactly the
// pigeonhole bound guaranteeing that any two signatures agreeing on ≥ t
// of their positions share at least one full band (recall 1.0 against
// Signature.Similarity). Smaller b means longer rows and fewer false
// positives, so the smallest admissible divisor is also the most
// selective layout that keeps the guarantee.
//
// For sigLen 64 this yields: t=1.0→(1,64), t≥0.95→(4,16), t≥0.9→(8,8),
// t≥0.8→(16,4), t≥0.7→(32,2), below →(64,1) (every element its own
// band — document bucket skew before using thresholds that low).
func ParamsFor(threshold float64, sigLen int) Params {
	if sigLen <= 0 {
		panic("lsh: signature length must be positive")
	}
	if threshold > 1 {
		threshold = 1
	}
	if threshold < 0 {
		threshold = 0
	}
	// Max disagreeing positions a passing pair may have.
	d := sigLen - int(math.Ceil(threshold*float64(sigLen)))
	need := d + 1
	if need > sigLen {
		need = sigLen
	}
	for b := 1; b <= sigLen; b++ {
		if sigLen%b == 0 && b >= need {
			return Params{Bands: b, Rows: sigLen / b}
		}
	}
	return Params{Bands: sigLen, Rows: 1} // unreachable: b=sigLen always qualifies
}

// CandidateProb is the classic s-curve: the probability that two
// signatures with per-position agreement s collide in at least one band
// under layout p, assuming independent positions. Used for documentation
// and tests; the admitter relies on the pigeonhole guarantee instead.
func CandidateProb(s float64, p Params) float64 {
	return 1 - math.Pow(1-math.Pow(s, float64(p.Rows)), float64(p.Bands))
}

// Stats counts index work. Probes is the number of band-bucket lookups
// performed by Candidates calls; Candidates is the total candidate IDs
// returned (after per-query dedup).
type Stats struct {
	Probes     int64
	Candidates int64
}

// Index is a banded LSH index mapping signature bands to the IDs added
// under them. It is not safe for concurrent use; the state admitter
// already serialises admissions per crawl.
type Index struct {
	params  Params
	sigLen  int
	buckets []map[uint64][]int // per band: band hash → IDs in insertion order
	n       int
	stats   Stats
}

// New builds an index for signatures of sigLen elements with the layout
// derived from threshold via ParamsFor.
func New(threshold float64, sigLen int) *Index {
	return NewWithParams(ParamsFor(threshold, sigLen), sigLen)
}

// NewWithParams builds an index with an explicit band count. Rows are
// derived from sigLen (contiguous near-equal chunks covering every
// position), so p.Rows is advisory. Band counts below the ParamsFor
// bound drop the recall guarantee and behave as ordinary probabilistic
// LSH.
func NewWithParams(p Params, sigLen int) *Index {
	if sigLen <= 0 {
		panic("lsh: signature length must be positive")
	}
	if p.Bands < 1 {
		p.Bands = 1
	}
	if p.Bands > sigLen {
		p.Bands = sigLen
	}
	p.Rows = sigLen / p.Bands
	buckets := make([]map[uint64][]int, p.Bands)
	for i := range buckets {
		buckets[i] = make(map[uint64][]int)
	}
	return &Index{params: p, sigLen: sigLen, buckets: buckets}
}

// Params reports the effective band layout.
func (x *Index) Params() Params { return x.params }

// Len reports how many signatures have been added.
func (x *Index) Len() int { return x.n }

// Stats reports cumulative probe/candidate counts.
func (x *Index) Stats() Stats { return x.stats }

// band returns the half-open element range [lo,hi) covered by band i.
// Ranges are contiguous, near-equal, and cover every position — required
// for the pigeonhole recall guarantee.
func (x *Index) band(i int) (lo, hi int) {
	b := x.params.Bands
	return i * x.sigLen / b, (i + 1) * x.sigLen / b
}

// bandHash hashes sig[lo:hi] with FNV-64a, salted by the band number so
// identical element runs in different bands land in distinct buckets.
func bandHash(band int, sig shingle.Signature, lo, hi int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ (uint64(band)+1)*prime64
	for _, v := range sig[lo:hi] {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	return h
}

func (x *Index) check(sig shingle.Signature) {
	if len(sig) != x.sigLen {
		panic(fmt.Sprintf("lsh: signature length %d, index expects %d", len(sig), x.sigLen))
	}
}

// Add registers sig under id in every band bucket. IDs must be added in
// ascending order for Candidates' ordering guarantee to equal
// lowest-ID-first (the admitter admits states with increasing StateIDs).
func (x *Index) Add(id int, sig shingle.Signature) {
	x.check(sig)
	for i := range x.buckets {
		lo, hi := x.band(i)
		h := bandHash(i, sig, lo, hi)
		x.buckets[i][h] = append(x.buckets[i][h], id)
	}
	x.n++
}

// Candidates returns the IDs sharing at least one band bucket with sig,
// deduplicated and sorted ascending — a deterministic order, so the
// admitter's first verified match is the lowest matching ID.
func (x *Index) Candidates(sig shingle.Signature) []int {
	x.check(sig)
	var out []int
	for i := range x.buckets {
		lo, hi := x.band(i)
		h := bandHash(i, sig, lo, hi)
		x.stats.Probes++
		out = append(out, x.buckets[i][h]...)
	}
	if len(out) > 1 {
		sort.Ints(out)
		w := 1
		for r := 1; r < len(out); r++ {
			if out[r] != out[w-1] {
				out[w] = out[r]
				w++
			}
		}
		out = out[:w]
	}
	x.stats.Candidates += int64(len(out))
	return out
}
