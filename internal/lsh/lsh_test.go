package lsh

import (
	"math"
	"math/rand"
	"testing"

	"ajaxcrawl/internal/shingle"
)

// TestParamsForTable pins the threshold→(bands,rows) table DESIGN.md §5h
// documents for the two signature lengths the crawler uses.
func TestParamsForTable(t *testing.T) {
	cases := []struct {
		threshold float64
		sigLen    int
		want      Params
	}{
		{1.0, 64, Params{1, 64}},
		{0.95, 64, Params{4, 16}},
		{0.9, 64, Params{8, 8}},
		{0.85, 64, Params{16, 4}},
		{0.8, 64, Params{16, 4}},
		{0.7, 64, Params{32, 2}},
		{0.5, 64, Params{64, 1}},
		{1.0, 16, Params{1, 16}},
		{0.9, 16, Params{2, 8}},
		{0.8, 16, Params{4, 4}},
		{0.5, 16, Params{16, 1}},
	}
	for _, c := range cases {
		if got := ParamsFor(c.threshold, c.sigLen); got != c.want {
			t.Errorf("ParamsFor(%v, %d) = %v, want %v", c.threshold, c.sigLen, got, c.want)
		}
	}
}

// TestParamsForPigeonholeBound verifies the derivation itself for every
// threshold in steps of 0.01: the chosen band count must be a divisor of
// sigLen at least d+1 where d is the disagreement budget, and no smaller
// divisor may qualify (smallest admissible = most selective).
func TestParamsForPigeonholeBound(t *testing.T) {
	for _, sigLen := range []int{16, 64} {
		for ti := 0; ti <= 100; ti++ {
			th := float64(ti) / 100
			p := ParamsFor(th, sigLen)
			if sigLen%p.Bands != 0 || p.Rows != sigLen/p.Bands {
				t.Fatalf("ParamsFor(%v, %d) = %v: not a divisor layout", th, sigLen, p)
			}
			d := sigLen - int(math.Ceil(th*float64(sigLen)))
			need := d + 1
			if need > sigLen {
				need = sigLen
			}
			if p.Bands < need {
				t.Fatalf("ParamsFor(%v, %d) = %v: below pigeonhole bound %d", th, sigLen, p, need)
			}
			for b := 1; b < p.Bands; b++ {
				if sigLen%b == 0 && b >= need {
					t.Fatalf("ParamsFor(%v, %d) = %v: smaller divisor %d also qualifies", th, sigLen, p, b)
				}
			}
		}
	}
}

// randomSig returns a signature with each element drawn from a small
// alphabet, so random pairs land all over the similarity range.
func randomSig(r *rand.Rand, n, alphabet int) shingle.Signature {
	sig := make(shingle.Signature, n)
	for i := range sig {
		sig[i] = uint64(r.Intn(alphabet))
	}
	return sig
}

// TestRecallOneOnVerifiedPath is the property the admitter's correctness
// rests on: for every pair a brute-force Similarity scan would accept at
// the threshold, the index must report the pair as candidates — recall
// 1.0, deterministically, by the pigeonhole bound (not just the s-curve
// in expectation).
func TestRecallOneOnVerifiedPath(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, threshold := range []float64{0.7, 0.8, 0.9, 0.95} {
		for _, sigLen := range []int{16, 64} {
			idx := New(threshold, sigLen)
			const n = 200
			sigs := make([]shingle.Signature, n)
			for i := range sigs {
				switch {
				case i > 0 && r.Intn(4) == 0:
					// Exact duplicate of an earlier signature, so even
					// threshold 1.0 has qualifying pairs.
					sigs[i] = append(shingle.Signature(nil), sigs[r.Intn(i)]...)
				case i > 0 && r.Intn(2) == 0:
					// Near-duplicate with a few mutated positions, so
					// pairs straddle the threshold densely.
					sigs[i] = append(shingle.Signature(nil), sigs[r.Intn(i)]...)
					for m := r.Intn(sigLen/2) + 1; m > 0; m-- {
						sigs[i][r.Intn(sigLen)] = uint64(r.Intn(1 << 30))
					}
				default:
					sigs[i] = randomSig(r, sigLen, 4)
				}
				idx.Add(i, sigs[i])
			}
			pairs, missed := 0, 0
			for i := range sigs {
				cands := map[int]bool{}
				for _, c := range idx.Candidates(sigs[i]) {
					cands[c] = true
				}
				for j := range sigs {
					if i == j || sigs[i].Similarity(sigs[j]) < threshold {
						continue
					}
					pairs++
					if !cands[j] {
						missed++
					}
				}
			}
			if pairs == 0 {
				t.Fatalf("threshold %v sigLen %d: corpus produced no above-threshold pairs", threshold, sigLen)
			}
			if missed != 0 {
				t.Errorf("threshold %v sigLen %d: index missed %d of %d brute-force pairs", threshold, sigLen, missed, pairs)
			}
		}
	}
}

// TestCandidatesSortedDeduped pins the ordering contract the admitter's
// deterministic merge target depends on.
func TestCandidatesSortedDeduped(t *testing.T) {
	idx := New(0.9, 64)
	r := rand.New(rand.NewSource(7))
	base := randomSig(r, 64, 2)
	for i := 0; i < 50; i++ {
		sig := append(shingle.Signature(nil), base...)
		sig[r.Intn(64)] = uint64(r.Intn(1 << 20))
		idx.Add(i, sig)
	}
	cands := idx.Candidates(base)
	if len(cands) == 0 {
		t.Fatalf("no candidates for the common base")
	}
	for i := 1; i < len(cands); i++ {
		if cands[i] <= cands[i-1] {
			t.Fatalf("candidates not strictly ascending: %v", cands)
		}
	}
	if got := idx.Candidates(base); len(got) != len(cands) {
		t.Fatalf("Candidates not deterministic: %d vs %d", len(got), len(cands))
	}
}

// TestStatsCount pins the probe/candidate accounting the crawler's
// crawl.states.neardup.* metrics are built on.
func TestStatsCount(t *testing.T) {
	idx := New(0.9, 64) // 8 bands
	sig := make(shingle.Signature, 64)
	idx.Add(1, sig)
	idx.Candidates(sig)
	st := idx.Stats()
	if st.Probes != 8 {
		t.Errorf("Probes = %d, want 8 (one per band)", st.Probes)
	}
	if st.Candidates != 1 {
		t.Errorf("Candidates = %d, want 1", st.Candidates)
	}
}

// TestCandidateProbSCurve sanity-checks the documented s-curve: at the
// derived layout, collision probability is near 1 above the threshold
// and decays below it.
func TestCandidateProbSCurve(t *testing.T) {
	p := ParamsFor(0.9, 64) // (8,8)
	if hi := CandidateProb(0.95, p); hi < 0.95 {
		t.Errorf("P(candidate | s=0.95) = %v, want near 1", hi)
	}
	if lo := CandidateProb(0.3, p); lo > 0.01 {
		t.Errorf("P(candidate | s=0.3) = %v, want near 0", lo)
	}
}

// TestLengthMismatchPanics pins the caller contract.
func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic on signature length mismatch")
		}
	}()
	idx := New(0.9, 64)
	idx.Add(0, make(shingle.Signature, 16))
}
