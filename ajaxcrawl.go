// Package ajaxcrawl is a from-scratch Go implementation of "AJAX Crawl:
// Making AJAX Applications Searchable" (ICDE 2009 / ETH master thesis by
// Reto Matter): a crawler that makes the client-side states of AJAX
// applications searchable.
//
// The package is the public façade over the subsystems in internal/:
//
//   - Crawler — the event-driven breadth-first AJAX crawler with
//     hot-node caching (thesis ch. 3–4), built on an embedded HTML
//     parser, DOM, and JavaScript interpreter;
//   - Engine — the complete search pipeline (thesis ch. 5–6): precrawl
//   - PageRank, URL partitioning, parallel crawling, per-partition
//     index shards, distributed query processing, and result
//     reconstruction by event replay;
//   - SimSite — a deterministic synthetic YouTube-like AJAX site used by
//     the examples, tests and the experiment harness (the stand-in for
//     the thesis's YouTube10000 dataset).
//
// Quickstart:
//
//	site := ajaxcrawl.NewSimSite(50, 1)
//	eng, err := ajaxcrawl.BuildEngine(context.Background(), ajaxcrawl.Config{
//		Fetcher:  ajaxcrawl.NewHandlerFetcher(site.Handler()),
//		StartURL: site.VideoURL(0),
//		MaxPages: 25,
//	})
//	results := eng.Search("morcheeba singer")
//	html, _ := eng.Reconstruct(context.Background(), results[0])
package ajaxcrawl

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"ajaxcrawl/internal/core"
	"ajaxcrawl/internal/dom"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/index"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/query"
	"ajaxcrawl/internal/webapp"
)

// Re-exported core types. The aliases keep the public API in one import
// while the implementation lives in internal packages.
type (
	// Fetcher retrieves resources for the crawler.
	Fetcher = fetch.Fetcher
	// Result is one ranked search hit: URL, application state, score.
	Result = query.Result
	// Graph is the transition-graph application model of one AJAX page.
	Graph = model.Graph
	// CrawlOptions configure the crawler (limits, hot-node policy, ...).
	CrawlOptions = core.Options
	// CrawlMetrics aggregate what a crawl cost.
	CrawlMetrics = core.Metrics
	// PageMetrics report one page's crawl cost.
	PageMetrics = core.PageMetrics
	// Weights are the w1..w4 ranking coefficients of formula 5.3.
	Weights = query.Weights
	// Index is one inverted-file shard.
	Index = index.Index
	// Manifest is the versioned descriptor of a saved index snapshot.
	Manifest = index.Manifest
	// ErrorPolicy decides how a multi-page crawl treats a failed page.
	ErrorPolicy = core.ErrorPolicy
)

// Error-policy values for CrawlOptions.OnError.
const (
	// SkipAndCount (default): skip the failed page, count it in
	// Metrics.PagesFailed, keep crawling.
	SkipAndCount = core.SkipAndCount
	// FailFast: abort the crawl on the first page error.
	FailFast = core.FailFast
)

// NewHandlerFetcher serves fetches from an in-process http.Handler — no
// sockets, fully deterministic.
func NewHandlerFetcher(h http.Handler) Fetcher {
	return &fetch.HandlerFetcher{Handler: h}
}

// NewHTTPFetcher fetches over real HTTP.
func NewHTTPFetcher(client *http.Client) Fetcher {
	return &fetch.HTTPFetcher{Client: client}
}

// NewLatencyFetcher wraps a fetcher with simulated per-request latency
// (base + perKB·size), as the experiments use to model the network.
func NewLatencyFetcher(inner Fetcher, base, perKB time.Duration) Fetcher {
	return fetch.NewInstrumented(inner, fetch.RealClock{}, base, perKB)
}

// NewCrawler returns a standalone AJAX crawler over a fetcher. Use it to
// crawl single pages into application models without the full engine.
func NewCrawler(f Fetcher, opts CrawlOptions) *core.Crawler {
	return core.New(f, opts)
}

// Config parameterizes BuildEngine — the full pipeline of thesis ch. 6.
type Config struct {
	// Fetcher retrieves all pages (site root, watch pages, AJAX calls).
	Fetcher Fetcher
	// StartURL seeds the precrawl.
	StartURL string
	// MaxPages bounds how many pages the precrawler discovers.
	MaxPages int
	// PartitionSize is pages per crawl partition (default 20).
	PartitionSize int
	// ProcLines is the number of parallel crawler process lines
	// (default 4).
	ProcLines int
	// Crawl are the per-page crawler options (default: AJAX with
	// hot-node caching, 11 states).
	Crawl CrawlOptions
	// Weights are the ranking coefficients (default DefaultWeights).
	Weights *Weights
	// WorkDir is where partitions and models are written. Empty means a
	// throwaway temp directory.
	WorkDir string
	// KeepURL filters which hyperlinks the precrawler follows (nil =
	// same-path /watch pages and everything else alike).
	KeepURL func(string) bool
	// FrontierSeed seeds the work-stealing scheduler's tie-breaks. Any
	// fixed value makes a crawl reproducible run-to-run; 0 uses the
	// default seed.
	FrontierSeed int64
	// BloomBits sizes the frontier's dedup bloom filter (bits, rounded
	// to a power of two; 0 = default).
	BloomBits int
}

// Engine is a complete AJAX search engine: sharded indexes, the ranking
// broker, and the application models needed to reconstruct result states.
type Engine struct {
	broker  *query.Broker
	graphs  map[string]*model.Graph
	fetcher Fetcher
	// Metrics of the crawl that built this engine.
	Metrics *CrawlMetrics
	// PageRank of every crawled URL.
	PageRank map[string]float64
}

// BuildEngine runs the full pipeline: precrawl (hyperlink graph +
// PageRank), URL partitioning, parallel AJAX crawling, and per-partition
// index building. Crawling and indexing are pipelined: each partition is
// indexed as soon as its process line finishes it, while later
// partitions are still crawling.
//
// Canceling ctx stops the pipeline promptly. If any pages were already
// crawled, BuildEngine returns the partial engine built from them
// alongside ctx's error, so a graceful shutdown can still flush and
// serve what it has; otherwise it returns nil and the error.
func BuildEngine(ctx context.Context, cfg Config) (*Engine, error) {
	if cfg.Fetcher == nil {
		return nil, fmt.Errorf("ajaxcrawl: Config.Fetcher is required")
	}
	if cfg.StartURL == "" {
		return nil, fmt.Errorf("ajaxcrawl: Config.StartURL is required")
	}
	if cfg.MaxPages <= 0 {
		return nil, fmt.Errorf("ajaxcrawl: Config.MaxPages must be positive")
	}
	if cfg.PartitionSize <= 0 {
		cfg.PartitionSize = 20
	}
	if cfg.ProcLines <= 0 {
		cfg.ProcLines = 4
	}
	workDir := cfg.WorkDir
	if workDir == "" {
		dir, err := os.MkdirTemp("", "ajaxcrawl-*")
		if err != nil {
			return nil, fmt.Errorf("ajaxcrawl: workdir: %w", err)
		}
		defer os.RemoveAll(dir)
		workDir = dir
	}

	// Phase 1: precrawl.
	pre := &core.Precrawler{
		Fetcher:  cfg.Fetcher,
		StartURL: cfg.StartURL,
		MaxPages: cfg.MaxPages,
		KeepURL:  cfg.KeepURL,
	}
	preRes, err := pre.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("ajaxcrawl: precrawl: %w", err)
	}
	if len(preRes.URLs) == 0 {
		return nil, fmt.Errorf("ajaxcrawl: precrawl found no pages from %s", cfg.StartURL)
	}

	// Phase 2: partition.
	parts, err := (&core.URLPartitioner{
		PartitionSize: cfg.PartitionSize,
		RootDir:       workDir,
	}).Partition(preRes.URLs)
	if err != nil {
		return nil, fmt.Errorf("ajaxcrawl: partition: %w", err)
	}

	// Phases 3+4, pipelined: process lines crawl partitions while this
	// goroutine indexes each completed partition into its shard. Shards
	// stay index-aligned with partitions so the layout (and ranking
	// tie-breaks) are deterministic regardless of completion order.
	mp := &core.MPCrawler{
		NewCrawler:   func() *core.Crawler { return core.New(cfg.Fetcher, cfg.Crawl) },
		ProcLines:    cfg.ProcLines,
		Partitions:   parts,
		Priorities:   preRes.PageRank,
		SeedSeen:     preRes.Visited,
		FrontierSeed: cfg.FrontierSeed,
		BloomBits:    cfg.BloomBits,
	}
	shardByPart := make([]*index.Index, len(parts))
	perPart := make([]*core.Metrics, len(parts))
	graphs := make(map[string]*model.Graph)
	var crawlErr, ctxErr error
	for pr := range mp.Stream(ctx) {
		if pr.Err != nil {
			if errors.Is(pr.Err, context.Canceled) || errors.Is(pr.Err, context.DeadlineExceeded) {
				ctxErr = pr.Err
			} else if crawlErr == nil {
				crawlErr = fmt.Errorf("ajaxcrawl: crawl partition %d: %w", pr.Index+1, pr.Err)
			}
		}
		if len(pr.Graphs) == 0 {
			continue
		}
		shard := index.BuildCtx(ctx, pr.Graphs, preRes.PageRank, 0)
		for _, g := range pr.Graphs {
			graphs[g.URL] = g
		}
		shardByPart[pr.Index] = shard
		perPart[pr.Index] = pr.Metrics
	}
	if crawlErr != nil {
		return nil, crawlErr
	}
	if ctxErr == nil {
		ctxErr = ctx.Err()
	}
	if ctxErr != nil && len(graphs) == 0 {
		return nil, fmt.Errorf("ajaxcrawl: crawl: %w", ctxErr)
	}

	// Aggregate metrics and shards in partition order, not completion
	// order, so PerPage rows and shard layout are reproducible.
	metrics := &core.Metrics{}
	var shards []*index.Index
	for i, shard := range shardByPart {
		if shard == nil {
			continue
		}
		shards = append(shards, shard)
		if perPart[i] != nil {
			metrics.Merge(perPart[i])
		}
	}

	weights := query.DefaultWeights
	if cfg.Weights != nil {
		weights = *cfg.Weights
	}
	eng := &Engine{
		broker:   &query.Broker{Shards: shards, W: weights},
		graphs:   graphs,
		fetcher:  cfg.Fetcher,
		Metrics:  metrics,
		PageRank: preRes.PageRank,
	}
	return eng, ctxErr
}

// NewEngineFromGraphs builds an engine directly from crawled application
// models (single shard) — useful when the caller drives the crawler
// itself.
func NewEngineFromGraphs(f Fetcher, graphs []*model.Graph, pageRank map[string]float64) *Engine {
	shard := index.New()
	byURL := make(map[string]*model.Graph, len(graphs))
	for _, g := range graphs {
		shard.AddGraph(g, pageRank[g.URL], 0)
		byURL[g.URL] = g
	}
	return &Engine{
		broker:   query.NewBroker([]*index.Index{shard}),
		graphs:   byURL,
		fetcher:  f,
		PageRank: pageRank,
	}
}

// Search evaluates a conjunctive keyword query across all shards and
// returns ranked (URL, state) results.
func (e *Engine) Search(q string) []Result { return e.broker.Search(q) }

// SearchCtx is Search under a context: when the context carries
// telemetry (obs.With), the evaluation is traced as a query.exec span
// and its latency lands in the metrics registry.
func (e *Engine) SearchCtx(ctx context.Context, q string) []Result {
	return e.broker.SearchCtx(ctx, q)
}

// SearchTopK returns at most k results, evaluated with the bounded-heap
// top-k path (same results and order as TopKResults(Search(q), k)).
func (e *Engine) SearchTopK(q string, k int) []Result {
	return e.broker.SearchTopK(q, k)
}

// SearchTopKCtx is SearchTopK under a context (see SearchCtx).
func (e *Engine) SearchTopKCtx(ctx context.Context, q string, k int) []Result {
	return e.broker.SearchTopKCtx(ctx, q, k)
}

// SaveSnapshot persists the engine — every index shard, every
// application model, and a versioned manifest — into dir, the layout
// the ajaxserve daemon (and LoadEngineSnapshot) consumes. The manifest
// is written last and atomically, so a crash mid-save never publishes a
// half-snapshot, and a daemon watching dir hot-swaps only once the new
// snapshot is complete.
func (e *Engine) SaveSnapshot(dir string) (*Manifest, error) {
	graphs := make([]*model.Graph, 0, len(e.graphs))
	for _, g := range e.graphs {
		graphs = append(graphs, g)
	}
	return index.SaveSnapshot(dir, e.broker.Shards, graphs)
}

// LoadEngineSnapshot constructs an Engine from a snapshot directory
// written by SaveSnapshot (or `ajaxcrawl -save-index`). The fetcher is
// only needed for Reconstruct; pass nil for a query-only engine.
func LoadEngineSnapshot(dir string, f Fetcher) (*Engine, error) {
	man, shards, err := index.LoadSnapshot(dir)
	if err != nil {
		return nil, err
	}
	graphs := make(map[string]*model.Graph)
	if man.Models != "" {
		gs, err := model.LoadAll(dir)
		if err != nil {
			return nil, fmt.Errorf("ajaxcrawl: snapshot models: %w", err)
		}
		for _, g := range gs {
			graphs[g.URL] = g
		}
	}
	return &Engine{
		broker:  &query.Broker{Shards: shards, W: query.DefaultWeights},
		graphs:  graphs,
		fetcher: f,
	}, nil
}

// Graph returns the application model of a crawled URL, or nil.
func (e *Engine) Graph(url string) *Graph { return e.graphs[url] }

// NumStates returns the total number of indexed states.
func (e *Engine) NumStates() int {
	n := 0
	for _, s := range e.broker.Shards {
		n += s.TotalStates
	}
	return n
}

// Shards exposes the index shards (read-only use).
func (e *Engine) Shards() []*Index { return e.broker.Shards }

// Reconstruct re-creates the DOM of a result's application state by
// loading the page and replaying the recorded events (thesis §5.4), and
// returns its HTML serialization. The replay (fetches and script
// execution) runs under ctx.
func (e *Engine) Reconstruct(ctx context.Context, r Result) (string, error) {
	g, ok := e.graphs[r.URL]
	if !ok {
		return "", fmt.Errorf("ajaxcrawl: no application model for %s", r.URL)
	}
	path := g.PathTo(r.State)
	if path == nil {
		return "", fmt.Errorf("ajaxcrawl: state %d unreachable in %s", r.State, r.URL)
	}
	doc, err := core.ReplayPath(ctx, e.fetcher, r.URL, path)
	if err != nil {
		return "", err
	}
	return dom.OuterHTML(doc), nil
}

// SimSite is the synthetic YouTube-like AJAX application: deterministic,
// generated from a seed, served via an http.Handler (see DESIGN.md for
// how it substitutes the thesis's live-YouTube dataset).
type SimSite struct {
	site *webapp.Site
}

// NewSimSite generates a synthetic site with the given number of videos.
func NewSimSite(videos int, seed int64) *SimSite {
	return &SimSite{site: webapp.New(webapp.DefaultConfig(videos, seed))}
}

// Handler returns the site's HTTP interface.
func (s *SimSite) Handler() http.Handler { return s.site.Handler() }

// NumVideos returns the number of videos.
func (s *SimSite) NumVideos() int { return s.site.NumVideos() }

// VideoURL returns the watch-page URL of the i-th video.
func (s *SimSite) VideoURL(i int) string {
	return webapp.WatchURL(s.site.VideoID(i))
}

// VideoTitle returns the title of the i-th video.
func (s *SimSite) VideoTitle(i int) string { return s.site.Video(i).Title }

// CommentPages returns how many comment pages the i-th video has.
func (s *SimSite) CommentPages(i int) int { return len(s.site.Video(i).Pages) }

// Queries returns the 100-query experiment workload (Table 7.4's
// popular queries first).
func (s *SimSite) Queries() []string { return webapp.Queries() }

// Unwrap exposes the underlying site for the experiment harness.
func (s *SimSite) Unwrap() *webapp.Site { return s.site }

// IsWatchURL reports whether a URL is a video watch page — the KeepURL
// filter the examples use during precrawl.
func IsWatchURL(u string) bool { return strings.Contains(u, "/watch?v=") }

// TopKResults truncates a result list to its k best entries (results are
// already sorted by Search).
func TopKResults(rs []Result, k int) []Result { return query.TopK(rs, k) }

// NewEngineFromGraphsLimited is NewEngineFromGraphs with a per-page state
// limit: only the first maxStates states of each application model are
// indexed (0 = all). This is the "Max. State ID" knob the threshold and
// recall experiments sweep.
func NewEngineFromGraphsLimited(f Fetcher, graphs []*model.Graph, pageRank map[string]float64, maxStates int) *Engine {
	shard := index.New()
	byURL := make(map[string]*model.Graph, len(graphs))
	for _, g := range graphs {
		shard.AddGraph(g, pageRank[g.URL], maxStates)
		byURL[g.URL] = g
	}
	return &Engine{
		broker:   query.NewBroker([]*index.Index{shard}),
		graphs:   byURL,
		fetcher:  f,
		PageRank: pageRank,
	}
}

// NewSimSiteWithForms generates a synthetic site whose watch pages carry
// a Google-Suggest-style AJAX search box, for exercising the form-probing
// crawler extension (thesis ch. 10 future work).
func NewSimSiteWithForms(videos int, seed int64) *SimSite {
	cfg := webapp.DefaultConfig(videos, seed)
	cfg.WithSearchBox = true
	return &SimSite{site: webapp.New(cfg)}
}

// ResultWithSnippet is a search hit with a highlighted excerpt of the
// matching state's text.
type ResultWithSnippet = query.ResultWithSnippet

// SearchWithSnippets returns at most k results, each with a KWIC-style
// snippet of the matching application state (query terms bracketed).
func (e *Engine) SearchWithSnippets(q string, k int) []ResultWithSnippet {
	results := query.TopK(e.broker.Search(q), k)
	return query.AttachSnippets(results, func(url string, state int) string {
		g := e.graphs[url]
		if g == nil {
			return ""
		}
		s := g.State(model.StateID(state))
		if s == nil {
			return ""
		}
		return s.Text
	}, q, query.SnippetOptions{})
}

// NewsSite is the second synthetic AJAX application: a news site with
// expandable article sections (lattice-shaped transition graphs, two hot
// nodes). It demonstrates the crawler on a structurally different
// application than the YouTube-like SimSite.
type NewsSite struct {
	site *webapp.NewsSite
}

// NewNewsSite generates a synthetic news application.
func NewNewsSite(articles int, seed int64) *NewsSite {
	return &NewsSite{site: webapp.NewNews(webapp.NewsConfig{Articles: articles, Seed: seed, Sections: 3})}
}

// Handler returns the news site's HTTP interface.
func (n *NewsSite) Handler() http.Handler { return n.site.Handler() }

// NumArticles returns the number of articles.
func (n *NewsSite) NumArticles() int { return n.site.NumArticles() }

// ArticleURL returns the path of article i.
func (n *NewsSite) ArticleURL(i int) string { return n.site.ArticleURL(i) }
