// Command ajaxsearch builds, stores, loads and queries AJAX search
// indexes — the CLI replacement for the thesis's AJAXSearchSetupApp GUI
// (§8.3): build a new index from stored application models, save/load it,
// and process queries.
//
// Examples:
//
//	# Build an index from a crawl directory and save it.
//	ajaxsearch -models ./crawl-out -save ./idx.gob
//
//	# Build with a state limit (the GUI's "Max. State ID" knob).
//	ajaxsearch -models ./crawl-out -max-states 1 -save ./trad.gob
//
//	# Query a stored index.
//	ajaxsearch -load ./idx.gob -q "morcheeba singer" -k 10
//
//	# Build and query in one go.
//	ajaxsearch -models ./crawl-out -q "funny dance"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ajaxcrawl/internal/core"
	"ajaxcrawl/internal/index"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/query"
)

func main() {
	var (
		models      = flag.String("models", "", "crawl root directory with partition subdirectories")
		load        = flag.String("load", "", "load a stored index instead of building one")
		save        = flag.String("save", "", "store the built index at this path")
		maxStates   = flag.Int("max-states", 0, "index only the first N states per page (0 = all)")
		q           = flag.String("q", "", "query to process")
		k           = flag.Int("k", 10, "number of results to print")
		stats       = flag.Bool("stats", false, "print index statistics")
		verbose     = flag.Bool("v", false, "live span lines on stderr")
		metricsAddr = flag.String("metrics-addr", "", "serve /debug/metrics, /debug/trace/recent and pprof on this address")
		tracePath   = flag.String("trace", "", "write every span to this JSONL file")
	)
	flag.Parse()

	cli, err := obs.CLITelemetry(obs.CLIConfig{
		MetricsAddr:   *metricsAddr,
		TracePath:     *tracePath,
		Verbose:       *verbose,
		ProgressSpans: obs.CrawlProgressSpans,
	})
	if err != nil {
		fatal("telemetry: %v", err)
	}
	ctx := obs.With(context.Background(), cli.Tel)

	var ix *index.Index
	switch {
	case *load != "":
		var err error
		if strings.HasSuffix(*load, ".bin") {
			ix, err = index.LoadCompressed(*load)
		} else {
			ix, err = index.Load(*load)
		}
		if err != nil {
			fatal("load index: %v", err)
		}
		fmt.Printf("loaded index: %d docs, %d states, %d terms\n",
			ix.NumDocs(), ix.TotalStates, ix.NumTerms())
	case *models != "":
		ix = buildFromModels(ctx, *models, *maxStates)
	default:
		fmt.Fprintln(os.Stderr, "either -models or -load is required")
		flag.Usage()
		os.Exit(2)
	}

	if *save != "" {
		// A .bin extension selects the delta/varint-compressed format.
		var err error
		if strings.HasSuffix(*save, ".bin") {
			err = ix.SaveCompressed(*save)
		} else {
			err = ix.Save(*save)
		}
		if err != nil {
			fatal("save index: %v", err)
		}
		fmt.Printf("index saved to %s\n", *save)
	}
	if *stats {
		printStats(ix)
	}
	if *q != "" {
		eng := query.NewEngine(ix)
		results := eng.SearchTopKCtx(ctx, *q, *k)
		if len(results) == 0 {
			fmt.Printf("no results for %q\n", *q)
		} else {
			fmt.Printf("%d results for %q:\n", len(results), *q)
			for i, r := range results {
				fmt.Printf("%2d. %-55s state=%-3d score=%.4f\n", i+1, r.URL, r.State, r.Score)
			}
		}
	}
	if err := cli.Close(); err != nil {
		fatal("close trace: %v", err)
	}
}

// buildFromModels loads every partition's application models under root
// and builds one index, attaching PageRank values when a precrawl result
// is present — the "Build New Index" tab of the thesis GUI.
func buildFromModels(ctx context.Context, root string, maxStates int) *index.Index {
	_, sp := obs.StartSpan(ctx, obs.SpanIndexBuild, obs.A("root", root))
	entries, err := os.ReadDir(root)
	if err != nil {
		fatal("read models dir: %v", err)
	}
	var pageRank map[string]float64
	if pre, err := core.LoadPrecrawl(root); err == nil {
		pageRank = pre.PageRank
		fmt.Printf("using PageRank values for %d pages\n", len(pageRank))
	}
	// Partition directories are numbered; process in numeric order so
	// DocIDs are stable.
	var parts []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if n, err := strconv.Atoi(e.Name()); err == nil {
			parts = append(parts, n)
		}
	}
	sort.Ints(parts)
	if len(parts) == 0 {
		fatal("no partition directories under %s", root)
	}
	ix := index.New()
	pages, missing := 0, 0
	for _, p := range parts {
		dir := filepath.Join(root, strconv.Itoa(p))
		if _, err := os.Stat(filepath.Join(dir, model.ModelFileName)); os.IsNotExist(err) {
			// An interrupted crawl leaves untouched partitions without
			// models; index what is there.
			missing++
			continue
		}
		graphs, err := model.LoadAll(dir)
		if err != nil {
			fatal("partition %d: %v", p, err)
		}
		for _, g := range graphs {
			ix.AddGraph(g, pageRank[g.URL], maxStates)
			pages++
		}
	}
	if pages == 0 {
		fatal("no application models under %s", root)
	}
	if missing > 0 {
		fmt.Printf("skipped %d uncrawled partitions (interrupted crawl)\n", missing)
	}
	fmt.Printf("built index over %d pages: %d states, %d terms\n",
		pages, ix.TotalStates, ix.NumTerms())
	sp.SetAttr("postings", strconv.Itoa(ix.NumPostings()))
	sp.End(nil)
	return ix
}

func printStats(ix *index.Index) {
	fmt.Printf("documents:     %d\n", ix.NumDocs())
	fmt.Printf("states:        %d\n", ix.TotalStates)
	fmt.Printf("terms:         %d\n", ix.NumTerms())
	states := 0
	for i := 0; i < ix.NumDocs(); i++ {
		states += ix.Doc(index.DocID(i)).States
	}
	fmt.Printf("mean states/doc: %.2f\n", float64(states)/float64(ix.NumDocs()))
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
