// Command ajaxrouter is the query fan-out tier of a sharded serving
// fleet: it owns N shard groups of R ajaxserve replicas each, fans every
// /search out to all shards over the /shard/search protocol, re-scores
// the candidates with the globally corrected idf, and merges them into
// the same byte-identical /search responses a single-snapshot ajaxserve
// would produce.
//
//	# Publish one partition per shard, then serve each behind ajaxserve.
//	ajaxserve -snapshot ./shard0 -addr :9001 &
//	ajaxserve -snapshot ./shard0 -addr :9002 &   # replica of shard 0
//	ajaxserve -snapshot ./shard1 -addr :9003 &
//	ajaxserve -snapshot ./shard1 -addr :9004 &   # replica of shard 1
//
//	# Route over them: consecutive -shards addresses group into
//	# -replicas-sized shard groups (here 2 shards x 2 replicas).
//	ajaxrouter -addr :8090 -replicas 2 \
//	  -shards http://127.0.0.1:9001,http://127.0.0.1:9002,http://127.0.0.1:9003,http://127.0.0.1:9004
//
//	# Query the fleet exactly like a single server.
//	curl 'http://localhost:8090/search?q=morcheeba+singer&k=5'
//
// Replica choice is power-of-two-choices on outstanding requests, slow
// primaries are hedged to a sibling replica after -hedge-after (or the
// observed -hedge-quantile latency), and with -partial a dead shard
// degrades the answer (X-Ajaxserve-Shards: 3/4) instead of failing it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/router"
)

func main() {
	var (
		shardsFlag    = flag.String("shards", "", "comma-separated shard server base URLs; consecutive groups of -replicas addresses form one shard (required)")
		replicas      = flag.Int("replicas", 1, "replicas per shard: -shards is split into groups of this size")
		addr          = flag.String("addr", "127.0.0.1:8090", "listen address")
		defaultK      = flag.Int("k", 10, "default result count when ?k= is absent")
		maxK          = flag.Int("max-k", 100, "upper bound on ?k=")
		maxInflight   = flag.Int("max-inflight", 64, "concurrently routed queries before queueing/shedding with 429 (0 = unlimited)")
		admMin        = flag.Int("admission-min", 1, "adaptive admission limit floor (the limit decays toward this under latency pressure)")
		admQueue      = flag.Int("admission-queue", 0, "bounded admission wait queue; excess queues here instead of shedding immediately (0 = shed at the limit)")
		admTarget     = flag.Duration("admission-target", 0, "CoDel-style sojourn bound for queued queries: waits longer than this are dropped at grant time (0 = 50ms)")
		budgetFloor   = flag.Duration("budget-floor", 0, "fast-reject queries whose deadline budget remainder is at or below this (0 = 2ms)")
		ejectThresh   = flag.Float64("eject-threshold", 0, "failure-EWMA level that quarantines a replica (0 = 0.8)")
		quarantine    = flag.Duration("quarantine", 0, "initial quarantine backoff before the first probe; doubles on failed probes (0 = 5s)")
		quarantineMax = flag.Duration("quarantine-max", 0, "quarantine backoff ceiling (0 = 5m)")
		probation     = flag.Int("probation", 0, "consecutive successful probes required to readmit a quarantined replica (0 = 2)")
		probeInterval = flag.Duration("probe-interval", time.Second, "background health-probe sweep cadence for quarantined replicas (0 = off)")
		timeout       = flag.Duration("timeout", 2*time.Second, "per-query wall deadline across the whole fan-out; also seeds the budget propagated to shards (0 = none)")
		shardTimeout  = flag.Duration("shard-timeout", 1500*time.Millisecond, "per-shard deadline, hedges included (0 = none)")
		hedgeAfter    = flag.Duration("hedge-after", 0, "hedge to another replica when a shard is silent this long (0 = no fixed hedge)")
		hedgeQuantile = flag.Float64("hedge-quantile", 0, "hedge when a shard is slower than this quantile of observed latencies, e.g. 0.95 (0 = off; -hedge-after is the warmup delay)")
		partial       = flag.Bool("partial", true, "tolerate failed shards: answer with the responding subset and say so in X-Ajaxserve-Shards")
		seed          = flag.Int64("seed", 0, "replica-pick PRNG seed (0 = default), for reproducible balancing")
		verbose       = flag.Bool("v", false, "live span lines on stderr")
		tracePath     = flag.String("trace", "", "write every span to this JSONL file")
		sample        = flag.Duration("sample", 0, "sample request/inflight/runtime series at this cadence for /debug/status (0 = off)")
	)
	flag.Parse()
	topo, err := parseTopology(*shardsFlag, *replicas)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}

	// Hand-rolled telemetry (vs obs.CLITelemetry) so the ring sink can
	// back /debug/trace/recent on the same mux that routes queries.
	reg := obs.NewRegistry()
	ring := obs.NewRingSink(0)
	sinks := obs.MultiSink{ring}
	var traceFile *obs.FileSink
	if *tracePath != "" {
		traceFile, err = obs.NewFileSink(*tracePath)
		if err != nil {
			fatal("telemetry: %v", err)
		}
		sinks = append(sinks, traceFile)
	}
	if *verbose {
		sinks = append(sinks, obs.NewProgressSink(os.Stderr, obs.SpanRouterFanout))
	}
	tel := obs.New(reg, sinks)
	closeTrace := func() error {
		if traceFile != nil {
			return traceFile.Close()
		}
		return nil
	}

	rt, err := router.New(router.Config{
		Shards:          topo,
		ShardTimeout:    *shardTimeout,
		HedgeAfter:      *hedgeAfter,
		HedgeQuantile:   *hedgeQuantile,
		Partial:         *partial,
		Seed:            *seed,
		EjectThreshold:  *ejectThresh,
		QuarantineBase:  *quarantine,
		QuarantineMax:   *quarantineMax,
		ProbationProbes: *probation,
		BudgetFloor:     *budgetFloor,
	})
	if err != nil {
		fatal("router: %v", err)
	}
	rs := router.NewServer(rt, router.ServerConfig{
		DefaultK:        *defaultK,
		MaxK:            *maxK,
		MaxInflight:     *maxInflight,
		AdmissionMin:    *admMin,
		AdmissionQueue:  *admQueue,
		AdmissionTarget: *admTarget,
		QueryTimeout:    *timeout,
	}, tel)
	fmt.Printf("routing %d shards x %d replicas (partial=%v, hedge=%v/q%.2f, shard timeout %v)\n",
		rt.NumShards(), *replicas, *partial, *hedgeAfter, *hedgeQuantile, *shardTimeout)
	fmt.Printf("search:  http://%s/search?q=...&k=%d\n", *addr, *defaultK)
	fmt.Printf("metrics: http://%s/debug/metrics (Prometheus: ?format=prom), health: http://%s/healthz\n", *addr, *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Background recovery: quarantined replicas are probed on this cadence
	// and readmitted after -probation consecutive successes.
	if *probeInterval > 0 {
		go rt.HealthLoop(obs.With(ctx, tel), *probeInterval)
	}

	var sampler *obs.Sampler
	if *sample > 0 {
		sampler = obs.NewSampler(reg, obs.SamplerConfig{
			Gauges:   []string{"http.inflight"},
			Counters: []string{"http.requests", "router.fanout.hedges", "router.fanout.partial"},
		})
		go sampler.Run(ctx, *sample)
	}

	mux := http.NewServeMux()
	obs.RegisterDebug(mux, reg, ring)
	obs.RegisterStatus(mux, obs.StatusSource{Reg: reg, Sampler: sampler, StartedAt: time.Now()})
	h := rs.Handler()
	mux.Handle("/search", h)
	mux.Handle("/healthz", h)
	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("serve: %v", err)
		}
	case <-ctx.Done():
		// Graceful drain: stop accepting, let in-flight fan-outs finish.
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		}
		fmt.Println("drained; bye")
	}
	if err := closeTrace(); err != nil {
		fatal("close trace: %v", err)
	}
}

// parseTopology splits the flat -shards list into -replicas-sized shard
// groups of HTTP backends.
func parseTopology(shards string, replicas int) ([][]router.Backend, error) {
	if shards == "" {
		return nil, errors.New("-shards is required")
	}
	if replicas < 1 {
		return nil, fmt.Errorf("-replicas must be >= 1 (got %d)", replicas)
	}
	var addrs []string
	for _, a := range strings.Split(shards, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !strings.HasPrefix(a, "http://") && !strings.HasPrefix(a, "https://") {
			a = "http://" + a
		}
		addrs = append(addrs, strings.TrimRight(a, "/"))
	}
	if len(addrs) == 0 {
		return nil, errors.New("-shards lists no addresses")
	}
	if len(addrs)%replicas != 0 {
		return nil, fmt.Errorf("-shards lists %d addresses, not divisible into groups of %d replicas", len(addrs), replicas)
	}
	topo := make([][]router.Backend, 0, len(addrs)/replicas)
	for i := 0; i < len(addrs); i += replicas {
		group := make([]router.Backend, 0, replicas)
		for _, a := range addrs[i : i+replicas] {
			group = append(group, &router.HTTPBackend{BaseURL: a})
		}
		topo = append(topo, group)
	}
	return topo, nil
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
