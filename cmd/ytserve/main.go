// Command ytserve serves the synthetic YouTube-like AJAX site over HTTP,
// so the crawler (and a real browser) can be pointed at a live instance:
//
//	ytserve -videos 1000 -addr :8080
//	# then: ajaxcrawl -start http://localhost:8080/watch?v=<id> -pages 50
//
// Opening http://localhost:8080/ in a browser shows the index page; the
// comment pagination on watch pages is driven by real XMLHttpRequest
// calls, exactly what the AJAX crawler exercises.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/webapp"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		videos     = flag.Int("videos", 500, "number of videos")
		seed       = flag.Int64("seed", 2008, "generation seed")
		faultRate  = flag.Float64("fault-rate", 0, "answer this fraction of requests with 503 (chaos testing a live crawl; seeded by -seed)")
		retryAfter = flag.Duration("fault-retry-after", time.Second, "Retry-After hint advertised on injected 503s")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	site := webapp.New(webapp.DefaultConfig(*videos, *seed))
	fmt.Printf("serving %d synthetic videos on http://%s/\n", *videos, *addr)
	fmt.Printf("first watch page: http://%s%s\n", *addr, webapp.WatchURL(site.VideoID(0)))
	fmt.Printf("metrics: http://%s/debug/metrics (Prometheus: ?format=prom), profiles: http://%s/debug/pprof/\n", *addr, *addr)

	// The site rides behind the request-counting middleware; the same
	// mux serves /debug/metrics (JSON + Prometheus), the recent-span
	// ring, and net/http/pprof.
	reg := obs.NewRegistry()
	ring := obs.NewRingSink(0)
	mux := http.NewServeMux()
	obs.RegisterDebug(mux, reg, ring)
	obs.RegisterStatus(mux, obs.StatusSource{Reg: reg, StartedAt: time.Now()})
	handler := site.Handler()
	// Server-side chaos: a fraction of site requests answer 503 with a
	// Retry-After hint, so a crawl pointed here exercises its retry and
	// breaker stack against real HTTP. Injected 503s show up in the
	// instrumented handler's status counters like any other response.
	if *faultRate > 0 {
		rnd := rand.New(rand.NewSource(*seed))
		var mu sync.Mutex
		inner := handler
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			inject := rnd.Float64() < *faultRate
			mu.Unlock()
			if inject {
				w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter.Seconds())))
				http.Error(w, "injected fault", http.StatusServiceUnavailable)
				return
			}
			inner.ServeHTTP(w, r)
		})
		fmt.Printf("chaos: injecting 503s on %.0f%% of requests (Retry-After: %v)\n", *faultRate*100, *retryAfter)
	}
	mux.Handle("/", obs.InstrumentHandler(reg, handler))
	srv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "ytserve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Ctrl-C: drain in-flight requests, then exit cleanly.
		fmt.Println("shutting down ...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "ytserve: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}
