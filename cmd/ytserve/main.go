// Command ytserve serves the synthetic YouTube-like AJAX site over HTTP,
// so the crawler (and a real browser) can be pointed at a live instance:
//
//	ytserve -videos 1000 -addr :8080
//	# then: ajaxcrawl -start http://localhost:8080/watch?v=<id> -pages 50
//
// Opening http://localhost:8080/ in a browser shows the index page; the
// comment pagination on watch pages is driven by real XMLHttpRequest
// calls, exactly what the AJAX crawler exercises.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"ajaxcrawl/internal/webapp"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:8080", "listen address")
		videos = flag.Int("videos", 500, "number of videos")
		seed   = flag.Int64("seed", 2008, "generation seed")
	)
	flag.Parse()

	site := webapp.New(webapp.DefaultConfig(*videos, *seed))
	fmt.Printf("serving %d synthetic videos on http://%s/\n", *videos, *addr)
	fmt.Printf("first watch page: http://%s%s\n", *addr, webapp.WatchURL(site.VideoID(0)))
	if err := http.ListenAndServe(*addr, site.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "ytserve: %v\n", err)
		os.Exit(1)
	}
}
