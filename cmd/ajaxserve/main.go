// Command ajaxserve is the long-running search daemon: it loads a saved
// index snapshot (shards + application models + manifest, as written by
// `ajaxcrawl -save-index` or Engine.SaveSnapshot) and answers keyword
// queries over HTTP until stopped — the serving half of the search
// engine the crawling CLIs only build.
//
//	# Crawl and publish a snapshot, then serve it.
//	ajaxcrawl -sim 500 -pages 100 -out ./crawl-out -save-index ./crawl-out/snapshot
//	ajaxserve -snapshot ./crawl-out/snapshot -addr :8090
//
//	# Query it.
//	curl 'http://localhost:8090/search?q=morcheeba+singer&k=5'
//	curl 'http://localhost:8090/healthz'
//	curl 'http://localhost:8090/debug/metrics?format=prom'
//
//	# Re-crawl into the same directory while serving; ajaxserve notices
//	# the new manifest ID and hot-swaps without dropping a request.
//	ajaxserve -snapshot ./crawl-out/snapshot -watch 5s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/serve"
)

func main() {
	var (
		snapshot    = flag.String("snapshot", "", "snapshot directory to serve (required)")
		addr        = flag.String("addr", "127.0.0.1:8090", "listen address")
		defaultK    = flag.Int("k", 10, "default result count when ?k= is absent")
		maxK        = flag.Int("max-k", 100, "upper bound on ?k=")
		cacheSize   = flag.Int("cache-size", 1024, "result cache capacity in entries (0 uses the default)")
		cacheShards = flag.Int("cache-shards", 8, "result cache shard count")
		cacheTTL    = flag.Duration("cache-ttl", 0, "result cache entry TTL (0 = entries live until swap/eviction)")
		maxInflight = flag.Int("max-inflight", 64, "concurrently evaluating queries before queueing/shedding with 429 (0 = unlimited)")
		admMin      = flag.Int("admission-min", 1, "adaptive admission limit floor (the limit decays toward this under latency pressure)")
		admQueue    = flag.Int("admission-queue", 0, "bounded admission wait queue; excess queues here instead of shedding immediately (0 = shed at the limit)")
		admTarget   = flag.Duration("admission-target", 0, "CoDel-style sojourn bound for queued queries: waits longer than this are dropped at grant time (0 = 50ms)")
		budgetFloor = flag.Duration("budget-floor", 0, "fast-reject queries whose X-Ajaxserve-Budget-Ms remainder is at or below this (0 = 2ms)")
		brownout    = flag.Bool("brownout", true, "degrade (drop snippets, halve k) instead of queueing deeper when the admission queue is under pressure")
		timeout     = flag.Duration("timeout", 2*time.Second, "per-query deadline (0 = none)")
		watch       = flag.Duration("watch", 0, "poll the manifest at this interval and hot-swap on changes (0 = off)")
		verbose     = flag.Bool("v", false, "live span lines on stderr")
		tracePath   = flag.String("trace", "", "write every span to this JSONL file")
		sample      = flag.Duration("sample", 0, "sample request/inflight/runtime series at this cadence for /debug/status (0 = off)")
	)
	flag.Parse()
	if *snapshot == "" {
		fmt.Fprintln(os.Stderr, "-snapshot is required")
		flag.Usage()
		os.Exit(2)
	}

	// Hand-rolled telemetry (vs obs.CLITelemetry) so the ring sink can
	// back /debug/trace/recent on the same mux that serves queries.
	reg := obs.NewRegistry()
	ring := obs.NewRingSink(0)
	sinks := obs.MultiSink{ring}
	var traceFile *obs.FileSink
	if *tracePath != "" {
		var err error
		traceFile, err = obs.NewFileSink(*tracePath)
		if err != nil {
			fatal("telemetry: %v", err)
		}
		sinks = append(sinks, traceFile)
	}
	if *verbose {
		sinks = append(sinks, obs.NewProgressSink(os.Stderr, obs.SpanQueryExec))
	}
	tel := obs.New(reg, sinks)
	closeTrace := func() error {
		if traceFile != nil {
			return traceFile.Close()
		}
		return nil
	}

	srv, err := serve.New(serve.Config{
		SnapshotDir:     *snapshot,
		DefaultK:        *defaultK,
		MaxK:            *maxK,
		CacheShards:     *cacheShards,
		CacheCapacity:   *cacheSize,
		CacheTTL:        *cacheTTL,
		MaxInflight:     *maxInflight,
		AdmissionMin:    *admMin,
		AdmissionQueue:  *admQueue,
		AdmissionTarget: *admTarget,
		BudgetFloor:     *budgetFloor,
		NoBrownout:      !*brownout,
		QueryTimeout:    *timeout,
	}, tel)
	if err != nil {
		fatal("load snapshot: %v", err)
	}
	live := srv.QueryServer().Live()
	fmt.Printf("serving snapshot %s: %d shards, %d docs, %d states\n",
		srv.ManifestID(), len(live.Broker.Shards), live.Docs, live.States)
	fmt.Printf("search:  http://%s/search?q=...&k=%d\n", *addr, *defaultK)
	fmt.Printf("metrics: http://%s/debug/metrics (Prometheus: ?format=prom), health: http://%s/healthz\n", *addr, *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The sampler tracks serving traffic rather than the crawl defaults:
	// in-flight queries (gauge) and total requests (counter), plus the
	// runtime series.
	var sampler *obs.Sampler
	if *sample > 0 {
		sampler = obs.NewSampler(reg, obs.SamplerConfig{
			Gauges:   []string{"http.inflight"},
			Counters: []string{"http.requests", "query.cache.hits"},
		})
		go sampler.Run(ctx, *sample)
	}

	if *watch > 0 {
		fmt.Printf("watching %s for new manifests every %v\n", *snapshot, *watch)
		go srv.Watch(ctx, *watch)
	}

	// One mux serves queries and the debug surface; /search and
	// /healthz ride behind the request-counting middleware, so
	// http.requests / http.latency reflect live query traffic.
	mux := http.NewServeMux()
	obs.RegisterDebug(mux, reg, ring)
	obs.RegisterStatus(mux, obs.StatusSource{Reg: reg, Sampler: sampler, StartedAt: time.Now()})
	h := srv.Handler()
	mux.Handle("/search", h)
	mux.Handle("/shard/search", h)
	mux.Handle("/healthz", h)
	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("serve: %v", err)
		}
	case <-ctx.Done():
		// Graceful drain: stop accepting, let in-flight queries finish.
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		}
		fmt.Println("drained; bye")
	}
	if err := closeTrace(); err != nil {
		fatal("close trace: %v", err)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
