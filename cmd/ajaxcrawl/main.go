// Command ajaxcrawl crawls AJAX pages into application models.
//
// It drives the full pipeline of thesis chapters 3–6 from the command
// line: precrawl (hyperlink graph + PageRank), URL partitioning, and
// parallel AJAX crawling with the hot-node policy, storing per-partition
// application models and the precrawl structures into a root directory —
// the on-disk layout of thesis chapter 8.
//
// Examples:
//
//	# Crawl 100 pages of the built-in synthetic site into ./crawl-out.
//	ajaxcrawl -sim 500 -pages 100 -out ./crawl-out
//
//	# Crawl a live site over HTTP.
//	ajaxcrawl -start http://host/watch?v=abc -pages 50 -out ./crawl-out
//
//	# Traditional (JavaScript-off) crawl for comparison.
//	ajaxcrawl -sim 500 -pages 100 -out ./trad-out -traditional
//
//	# Crash-tolerant crawl: journal progress, then resume after a kill.
//	ajaxcrawl -sim 500 -pages 100 -out ./crawl-out -checkpoint-dir ./crawl-out/checkpoints
//	ajaxcrawl -sim 500 -pages 100 -out ./crawl-out -resume
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"ajaxcrawl/internal/core"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/index"
	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/webapp"
)

func main() {
	var (
		start       = flag.String("start", "", "start URL (http(s)://... for live crawling)")
		sim         = flag.Int("sim", 0, "crawl the built-in synthetic site with this many videos instead of a live URL")
		seed        = flag.Int64("seed", 2008, "synthetic site seed")
		pages       = flag.Int("pages", 50, "number of pages to precrawl")
		partSize    = flag.Int("partition", 20, "pages per partition")
		lines       = flag.Int("lines", 4, "parallel process lines")
		maxStates   = flag.Int("states", 11, "max states per page (incl. the initial one)")
		traditional = flag.Bool("traditional", false, "disable JavaScript (traditional crawl)")
		noHot       = flag.Bool("no-hotnode", false, "disable the hot-node cache")
		out         = flag.String("out", "crawl-out", "output root directory")
		saveProfile = flag.Bool("save-profile", false, "record an event profile for faster re-crawls")
		useProfile  = flag.String("use-profile", "", "skip events a stored profile marked unproductive")
		robots      = flag.Bool("respect-ajax-robots", false, "honor the site's /robots-ajax.txt state granularity")
		saveIndex   = flag.String("save-index", "", "also build per-partition index shards and publish a serving snapshot (shards + models + manifest) into this directory")
		verbose     = flag.Bool("v", false, "per-page progress output (live span lines on stderr)")
		metricsAddr = flag.String("metrics-addr", "", "serve /debug/metrics, /debug/status, /debug/trace/recent and pprof on this address")
		tracePath   = flag.String("trace", "", "write every span to this JSONL file")
		sample      = flag.Duration("sample", 0, "sample frontier depth, line utilization and runtime stats at this cadence (feeds the /debug/status charts; 0 = off)")
		jsonOut     = flag.Bool("json", false, "print the final metrics snapshot as one JSON document on stdout")
		retries     = flag.Int("retries", 0, "retry transient fetch failures up to this many times per request (0 disables retrying)")
		retryBase   = flag.Duration("retry-base", 100*time.Millisecond, "initial retry backoff; doubles per retry with full jitter")
		breakerThr  = flag.Float64("breaker-threshold", 0, "per-host circuit-breaker failure-rate threshold in (0,1] (0 disables the breaker)")
		faultRate   = flag.Float64("fault-rate", 0, "inject transient fetch faults with this probability (chaos testing; seeded by -seed)")
		ckptDir     = flag.String("checkpoint-dir", "", "journal crawl progress (per-line journals + frontier snapshot) into this directory (crash tolerance; default <out>/checkpoints when -resume is set)")
		resume      = flag.Bool("resume", false, "resume a previous crawl: reuse the saved precrawl and replay checkpoint journals so completed pages are not re-crawled")
		partRetries = flag.Int("partition-restarts", 0, "supervisor: requeue a failed or wedged page up to this many times")
		partStuck   = flag.Duration("partition-stuck", 0, "supervisor watchdog: cancel and requeue a page when no page completes on its line within this duration (0 disables)")
		frontSeed   = flag.Int64("frontier-seed", 0, "seed for the frontier scheduler's steal-victim PRNG (0 selects seed 1; results are seed-independent)")
		bloomBits   = flag.Int("bloom-bits", 0, "frontier dedup bloom filter size in bits (0 selects the default, 1<<20)")
		partsAlias  = flag.Int("partitions", 0, "deprecated: alias for -lines; process lines now pull from a shared frontier, partitions only shape the output layout")
		nearDup     = flag.Float64("neardup", 0, "merge states whose sketch similarity reaches this threshold in (0,1] (0 disables; 0.9 with the default minhash sketch, ~0.5 with -sketch simhash)")
		nearDupB    = flag.Int("neardup-bands", 0, "near-dup candidate lookup: 0 = LSH index with bands derived from -neardup (recall-preserving), -1 = brute-force linear scan, >0 = force that many bands (probabilistic, may miss merges)")
		sketchKind  = flag.String("sketch", "minhash", "near-dup signature family: minhash (64 permutations) or simhash (64-bit fingerprint, cheaper and coarser)")
		simNoisy    = flag.Bool("sim-noisy", false, "give the synthetic site mutating page chrome (timestamp/view-counter/ad-slot) — the noisy-app workload that near-dup merging collapses")
	)
	flag.Parse()
	if *partsAlias > 0 {
		fmt.Fprintln(os.Stderr, "warning: -partitions is deprecated; use -lines (process lines pull from a shared frontier)")
		*lines = *partsAlias
	}

	cli, err := obs.CLITelemetry(obs.CLIConfig{
		MetricsAddr:   *metricsAddr,
		TracePath:     *tracePath,
		Verbose:       *verbose,
		ProgressSpans: obs.CrawlProgressSpans,
		SampleEvery:   *sample,
	})
	if err != nil {
		fatal("telemetry: %v", err)
	}
	// With -json, stdout carries exactly one JSON document; the human
	// narration moves to stderr.
	var outw io.Writer = os.Stdout
	if *jsonOut {
		outw = os.Stderr
	}
	infof := func(format string, args ...interface{}) {
		fmt.Fprintf(outw, format+"\n", args...)
	}

	var fetcher fetch.Fetcher
	startURL := *start
	switch {
	case *sim > 0:
		cfg := webapp.DefaultConfig(*sim, *seed)
		cfg.NoisyDecor = *simNoisy
		site := webapp.New(cfg)
		fetcher = &fetch.HandlerFetcher{Handler: site.Handler()}
		if startURL == "" {
			startURL = webapp.WatchURL(site.VideoID(0))
		}
	case startURL != "":
		fetcher = &fetch.HTTPFetcher{}
	default:
		fmt.Fprintln(os.Stderr, "either -start or -sim is required")
		flag.Usage()
		os.Exit(2)
	}

	// Chaos testing: fault injection sits under the instrumentation, so
	// injected outcomes count in fetch.requests/fetch.errors like real
	// ones would.
	if *faultRate > 0 {
		fetcher = fetch.NewFaultFetcher(fetcher, fetch.FaultConfig{
			ErrorRate:      *faultRate,
			MaxConsecutive: *retries, // every URL stays recoverable within the retry budget
			Seed:           *seed,
		}, nil)
	}

	// Always crawl through an instrumented fetcher (zero added latency)
	// so per-request counters and the fetch.latency histogram flow into
	// the registry and per-page NetworkTime attribution works.
	fetcher = fetch.NewInstrumented(fetcher, nil, 0, 0)

	// Ctrl-C cancels the pipeline gracefully: in-flight partitions stop
	// within one page budget and their partial models are flushed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx = obs.With(ctx, cli.Tel)
	cli.StartSampler(ctx)

	// -resume implies checkpointing; default the journal directory so
	// `ajaxcrawl -resume` alone picks up where the killed run left off.
	if *resume && *ckptDir == "" {
		*ckptDir = filepath.Join(*out, "checkpoints")
	}

	begin := time.Now()
	var preRes *core.PrecrawlResult
	if *resume {
		// The saved precrawl pins the URL universe and partition layout,
		// so the resumed run crawls exactly the pages of the killed one.
		loaded, lerr := core.LoadPrecrawl(*out)
		if lerr == nil {
			preRes = loaded
			infof("resume: reusing saved precrawl (%d pages)", len(preRes.URLs))
		} else {
			infof("resume: %v; precrawling fresh", lerr)
		}
	}
	if preRes == nil {
		infof("precrawling %d pages from %s ...", *pages, startURL)
		pre := &core.Precrawler{Fetcher: fetcher, StartURL: startURL, MaxPages: *pages}
		var err error
		preRes, err = pre.Run(ctx)
		if err != nil {
			fatal("precrawl: %v", err)
		}
		if err := preRes.Save(*out); err != nil {
			fatal("save precrawl: %v", err)
		}
		infof("precrawl done: %d pages, %d link sources", len(preRes.URLs), len(preRes.Links))
	}

	parts, err := (&core.URLPartitioner{PartitionSize: *partSize, RootDir: *out}).Partition(preRes.URLs)
	if err != nil {
		fatal("partition: %v", err)
	}
	infof("partitioned into %d directories of <= %d pages", len(parts), *partSize)

	opts := core.Options{
		Traditional:      *traditional,
		UseHotNode:       !*noHot && !*traditional,
		MaxStates:        *maxStates,
		NearDupThreshold: *nearDup,
		NearDupBands:     *nearDupB,
		Sketch:           core.SketchKind(*sketchKind),
	}
	if *sketchKind != string(core.SketchMinHash) && *sketchKind != string(core.SketchSimHash) {
		fatal("-sketch %q: want %s or %s", *sketchKind, core.SketchMinHash, core.SketchSimHash)
	}
	if *retries > 0 {
		opts.RetryPolicy = &fetch.RetryPolicy{
			MaxAttempts: *retries + 1,
			BaseDelay:   *retryBase,
		}
	}
	if *breakerThr > 0 {
		opts.BreakerConfig = &fetch.BreakerConfig{FailureThreshold: *breakerThr}
	}
	var recordProfile *core.CrawlProfile
	if *saveProfile {
		recordProfile = core.NewCrawlProfile()
		opts.RecordProfile = recordProfile
	}
	if *useProfile != "" {
		prior, err := core.LoadCrawlProfile(*useProfile)
		if err != nil {
			fatal("load profile: %v", err)
		}
		opts.PriorProfile = prior
		infof("re-crawl with profile: %d known events", prior.NumEvents())
	}
	if *robots {
		if rb, _ := core.FetchAjaxRobots(ctx, fetcher); rb != nil {
			// Apply the advertised granularity of the start URL's path
			// class; per-URL application would need per-page options.
			opts = rb.ApplyTo(opts, startURL)
			infof("robots-ajax.txt caps states at %d", opts.MaxStates)
		}
	}
	mp := &core.MPCrawler{
		NewCrawler:   func() *core.Crawler { return core.New(fetcher, opts) },
		ProcLines:    *lines,
		Partitions:   parts,
		SaveModels:   true,
		MaxRestarts:  *partRetries,
		Priorities:   preRes.PageRank,
		SeedSeen:     preRes.Visited,
		FrontierSeed: *frontSeed,
		BloomBits:    *bloomBits,
	}
	if *partStuck > 0 {
		mp.StuckTimeout = *partStuck
	}
	var cps *core.CrawlCheckpoints
	if *ckptDir != "" {
		// One journal per process line plus the frontier snapshot. A
		// fresh run (-resume omitted) resets stale journals; a resume
		// recovers every line journal whatever line count wrote it.
		cps, err = core.OpenCrawlCheckpoints(ctx, *ckptDir, *resume)
		if err != nil {
			fatal("checkpoint: %v", err)
		}
		mp.Checkpoints = cps
		if n := cps.CompletedPages(); *resume && n > 0 {
			infof("resume: %d pages recovered from line journals, %d frontier URLs", n, len(cps.RecoveredFrontier()))
		}
		infof("checkpointing crawl into %s", *ckptDir)
	}
	res := mp.Run(ctx)
	if cps != nil {
		if cerr := cps.Close(); cerr != nil {
			fatal("checkpoint close: %v", cerr)
		}
	}
	if err := res.Err(); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Partial models of completed (and cut-short) partitions
			// are already on disk; report and keep going so the run's
			// outcome is usable.
			infof("interrupted: flushed partial models for %d crawled pages", res.Metrics.Pages)
		} else {
			fatal("crawl: %v", err)
		}
	}
	m := res.Metrics
	if *verbose {
		for _, pm := range m.PerPage {
			infof("  %-50s states=%-3d events=%-4d net=%-4d time=%v",
				pm.URL, pm.States, pm.EventsTriggered, pm.NetworkCalls, pm.CrawlTime.Round(time.Millisecond))
		}
	}
	infof("crawled %d pages: %d states, %d events (%d hit the network), %d hot-node hits",
		m.Pages, m.States, m.EventsTriggered, m.NetworkEvents, m.HotNodeHits)
	if m.PagesFailed > 0 {
		infof("skipped %d failed pages", m.PagesFailed)
	}
	if m.PagesResumed > 0 {
		infof("resume: %d pages replayed from checkpoint journals (not re-crawled)", m.PagesResumed)
	}
	if restarts := sum(res.Restarts); restarts > 0 {
		infof("supervisor: %d page requeues", restarts)
	}
	if m.NearDupMerges > 0 {
		infof("near-dup: %d states merged (%d probes, %d candidates verified, %d false positives)",
			m.NearDupMerges, m.NearDupProbes, m.NearDupCandidates, m.NearDupFalsePositives)
	}
	if m.Retries > 0 || m.BreakerOpens > 0 {
		infof("resilience: %d retries recovered %d pages, %d breaker opens",
			m.Retries, m.PagesRecovered, m.BreakerOpens)
	}
	infof("models stored under %s (one ajaxmodels.gob per partition)", *out)
	if *saveIndex != "" {
		// One shard per partition, in partition order — the same shard
		// layout BuildEngine produces, so rankings (and their
		// tie-breaks) match the in-process pipeline.
		var shards []*index.Index
		for _, gs := range res.GraphsByPartition {
			if len(gs) == 0 {
				continue
			}
			shards = append(shards, index.BuildCtx(ctx, gs, preRes.PageRank, 0))
		}
		if len(shards) == 0 {
			fatal("save index: no crawled partitions to index")
		}
		man, err := index.SaveSnapshot(*saveIndex, shards, res.Graphs())
		if err != nil {
			fatal("save index: %v", err)
		}
		infof("index snapshot %s published to %s (%d shards, %d docs, %d states) — serve it with: ajaxserve -snapshot %s",
			man.ID, *saveIndex, len(man.Shards), man.TotalDocs, man.TotalStates, *saveIndex)
	}
	if m.EventsSkipped > 0 {
		infof("profile skipped %d events", m.EventsSkipped)
	}
	if recordProfile != nil {
		path := filepath.Join(*out, "eventprofile.gob")
		if err := recordProfile.Save(path); err != nil {
			fatal("save profile: %v", err)
		}
		infof("event profile saved to %s (%d events)", path, recordProfile.NumEvents())
	}
	infof("total wall time: %v", time.Since(begin).Round(time.Millisecond))
	if err := cli.Close(); err != nil {
		fatal("close trace: %v", err)
	}
	if *jsonOut {
		doc := struct {
			Crawl    *core.Metrics `json:"crawl"`
			Registry obs.Snapshot  `json:"registry"`
		}{Crawl: m, Registry: cli.Reg.Snapshot()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal("json: %v", err)
		}
	}
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
