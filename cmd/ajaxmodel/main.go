// Command ajaxmodel inspects stored application models: it prints the
// transition graphs the crawler built (the chapter-2 model made visible)
// and can export them as Graphviz dot for rendering.
//
// Examples:
//
//	ajaxmodel -models ./crawl-out                 # summary of every page
//	ajaxmodel -models ./crawl-out -url /watch?v=X # one page in detail
//	ajaxmodel -models ./crawl-out -url /watch?v=X -dot > graph.dot
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ajaxcrawl/internal/model"
)

func main() {
	var (
		models = flag.String("models", "", "crawl root directory with partition subdirectories")
		url    = flag.String("url", "", "show one page's transition graph in detail")
		dot    = flag.Bool("dot", false, "emit Graphviz dot for the selected page (requires -url)")
	)
	flag.Parse()
	if *models == "" {
		fmt.Fprintln(os.Stderr, "-models is required")
		flag.Usage()
		os.Exit(2)
	}
	graphs := loadGraphs(*models)
	if len(graphs) == 0 {
		fatal("no application models under %s", *models)
	}

	if *url == "" {
		printSummary(graphs)
		return
	}
	var g *model.Graph
	for _, cand := range graphs {
		if cand.URL == *url {
			g = cand
			break
		}
	}
	if g == nil {
		fatal("no model for %s (run without -url for the list)", *url)
	}
	if *dot {
		emitDot(g)
		return
	}
	printDetail(g)
}

func loadGraphs(root string) []*model.Graph {
	entries, err := os.ReadDir(root)
	if err != nil {
		fatal("read %s: %v", root, err)
	}
	var parts []int
	for _, e := range entries {
		if e.IsDir() {
			if n, err := strconv.Atoi(e.Name()); err == nil {
				parts = append(parts, n)
			}
		}
	}
	sort.Ints(parts)
	var out []*model.Graph
	for _, p := range parts {
		gs, err := model.LoadAll(filepath.Join(root, strconv.Itoa(p)))
		if err != nil {
			fatal("partition %d: %v", p, err)
		}
		out = append(out, gs...)
	}
	return out
}

func printSummary(graphs []*model.Graph) {
	fmt.Printf("%-55s %-8s %-12s\n", "URL", "states", "transitions")
	totalStates, totalTrans := 0, 0
	for _, g := range graphs {
		st := g.Stats()
		fmt.Printf("%-55s %-8d %-12d\n", st.URL, st.States, st.Transitions)
		totalStates += st.States
		totalTrans += st.Transitions
	}
	fmt.Printf("%-55s %-8d %-12d  (%d pages)\n", "TOTAL", totalStates, totalTrans, len(graphs))
}

func printDetail(g *model.Graph) {
	fmt.Printf("page: %s\n", g.URL)
	fmt.Printf("states: %d, transitions: %d, initial: s%d\n\n", g.NumStates(), len(g.Transitions), g.Initial)
	for _, s := range g.States {
		text := s.Text
		if len(text) > 70 {
			text = text[:70] + "..."
		}
		fmt.Printf("s%-3d depth=%d hash=%s  %q\n", s.ID, s.Depth, s.Hash, text)
	}
	fmt.Println()
	fmt.Printf("%-10s %-10s %-14s %-10s %s\n", "from", "to", "source", "event", "targets")
	for _, tr := range g.Transitions {
		fmt.Printf("s%-9d s%-9d %-14s %-10s %s\n",
			tr.From, tr.To, tr.Source, tr.Event, strings.Join(tr.Targets, ","))
	}
	// Reachability check: every state should have a replay path.
	var unreachable []model.StateID
	for _, s := range g.States {
		if g.PathTo(s.ID) == nil && s.ID != g.Initial {
			unreachable = append(unreachable, s.ID)
		}
	}
	if len(unreachable) > 0 {
		fmt.Printf("\nwarning: unreachable states: %v\n", unreachable)
	}
}

// emitDot renders the transition graph like Figure 2.2 of the thesis.
func emitDot(g *model.Graph) {
	fmt.Println("digraph ajaxpage {")
	fmt.Println("  rankdir=LR;")
	fmt.Printf("  label=%q;\n", g.URL)
	for _, s := range g.States {
		shape := "circle"
		if s.ID == g.Initial {
			shape = "doublecircle"
		}
		fmt.Printf("  s%d [shape=%s, label=\"s%d\\nd=%d\"];\n", s.ID, shape, s.ID, s.Depth)
	}
	for _, tr := range g.Transitions {
		fmt.Printf("  s%d -> s%d [label=%q];\n", tr.From, tr.To, tr.Source)
	}
	fmt.Println("}")
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
