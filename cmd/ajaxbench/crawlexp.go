package main

import (
	"fmt"
	"time"

	"ajaxcrawl/internal/core"
	"ajaxcrawl/internal/fetch"
)

func init() {
	register("t7.1", "dataset statistics (Table 7.1)", expT71)
	register("f7.1", "videos per comment-page count (Figure 7.1)", expF71)
	register("f7.2", "states & events vs crawled videos (Figure 7.2)", expF72)
	register("t7.2", "crawl overhead traditional vs AJAX (Table 7.2)", expT72)
	register("f7.3", "distribution of per-page crawl times (Figure 7.3)", expF73)
	register("f7.4", "crawl time vs number of states (Figure 7.4)", expF74)
	register("f7.5", "events causing network calls, cache on/off (Figure 7.5)", expF75)
	register("f7.6", "network time, cache on/off (Figure 7.6)", expF76)
	register("f7.7", "state throughput, cache on/off (Figure 7.7)", expF77)
	register("t7.3", "parallel crawl times (Table 7.3)", expT73)
	register("f7.8", "parallel vs serial mean crawl time (Figure 7.8)", expF78)
}

// expT71 reproduces Table 7.1: dataset statistics gathered by a full AJAX
// crawl with the hot-node policy (the configuration the thesis used to
// build YouTube10000).
func expT71(e *env) error {
	m, _, err := e.crawl(e.videos, core.Options{UseHotNode: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(e.out, "%-55s %d\n", "Number of Pages", m.Pages)
	fmt.Fprintf(e.out, "%-55s %d\n", "Total Number of States", m.States)
	fmt.Fprintf(e.out, "%-55s %d\n", "Total Number of Events", m.EventsTriggered)
	fmt.Fprintf(e.out, "%-55s %.3f\n", "Avg. Number of Events per Page",
		float64(m.EventsTriggered)/float64(m.Pages))
	fmt.Fprintf(e.out, "%-55s %d\n", "Number of Events leading to Network Communication", m.NetworkEvents)
	fmt.Fprintf(e.out, "%-55s %.1f%%\n", "Reduction through hot-node policy",
		100*(1-float64(m.NetworkEvents)/float64(m.EventsTriggered)))
	return nil
}

// expF71 reproduces Figure 7.1: the distribution of videos over their
// number of comment pages (= AJAX states).
func expF71(e *env) error {
	st := e.site.DatasetStats(e.videos)
	fmt.Fprintf(e.out, "%-14s %s\n", "comment pages", "videos")
	for pages := 1; pages < len(st.PageHistogram); pages++ {
		fmt.Fprintf(e.out, "%-14d %d\n", pages, st.PageHistogram[pages])
	}
	fmt.Fprintf(e.out, "mean states/video: %.2f (paper: 4.16)\n",
		float64(st.TotalStates)/float64(st.Videos))
	return nil
}

// expF72 reproduces Figure 7.2: number of states and events against the
// number of crawled videos.
func expF72(e *env) error {
	prefixes := e.scaledPrefixes([]int{20, 40, 60, 80, 100, 250, 500}, 500)
	fmt.Fprintf(e.out, "%-8s %-8s %-8s\n", "videos", "states", "events")
	for _, n := range prefixes {
		m, _, err := e.crawl(n, core.Options{UseHotNode: true})
		if err != nil {
			return err
		}
		fmt.Fprintf(e.out, "%-8d %-8d %-8d\n", n, m.States, m.EventsTriggered)
	}
	return nil
}

// expT72 reproduces Table 7.2: total/mean crawl times for traditional and
// AJAX crawling and their ratios. Measured serially on the wall clock
// with scaled-down real latencies (latency/20 per request), so both
// network waits and processing costs (JS execution, model maintenance)
// enter the totals the way they did on the thesis's testbed.
func expT72(e *env) error {
	n := min(e.videos, 150)
	tradT, tradM, err := e.parallelCrawl(n, 1, core.Options{Traditional: true})
	if err != nil {
		return err
	}
	ajaxT, ajaxM, err := e.parallelCrawl(n, 1, core.Options{UseHotNode: true})
	if err != nil {
		return err
	}
	row := func(name string, t, a float64) {
		fmt.Fprintf(e.out, "%-16s %14.2f %14.2f %10.2fx\n", name, t, a, a/t)
	}
	fmt.Fprintf(e.out, "%-16s %14s %14s %10s\n", "", "Trad. (ms)", "AJAX (ms)", "AJAX/Trad")
	row("Total time", ms(tradT), ms(ajaxT))
	row("Mean per page", ms(tradT)/float64(n), ms(ajaxT)/float64(n))
	row("Mean per state", ms(tradT)/float64(tradM.States), ms(ajaxT)/float64(ajaxM.States))
	fmt.Fprintf(e.out, "(paper: x9.43 per page, x2.27 per state)\n")
	return nil
}

// expF73 reproduces Figure 7.3: how many pages fall into each crawl-time
// bucket.
func expF73(e *env) error {
	m, _, err := e.crawl(e.videos, core.Options{UseHotNode: true})
	if err != nil {
		return err
	}
	// Buckets scale with the latency model: bucket width = time of ~2
	// states at configured latency.
	width := e.latBase + 30*e.latPerK
	if width <= 0 {
		width = 100 * time.Millisecond
	}
	buckets := map[int]int{}
	maxB := 0
	for _, pm := range m.PerPage {
		b := int(pm.CrawlTime / width)
		buckets[b]++
		if b > maxB {
			maxB = b
		}
	}
	fmt.Fprintf(e.out, "%-24s %s\n", "crawl time range", "pages")
	for b := 0; b <= maxB; b++ {
		lo := time.Duration(b) * width
		hi := lo + width
		fmt.Fprintf(e.out, "%6.1fs - %-6.1fs %9d\n", lo.Seconds(), hi.Seconds(), buckets[b])
	}
	return nil
}

// expF74 reproduces Figure 7.4: per-video crawl time (and crawl time
// minus network time) against the number of crawled states.
func expF74(e *env) error {
	m, _, err := e.crawl(e.videos, core.Options{UseHotNode: true})
	if err != nil {
		return err
	}
	type acc struct {
		n         int
		total     time.Duration
		nonetwork time.Duration
	}
	byStates := map[int]*acc{}
	maxStates := 0
	for _, pm := range m.PerPage {
		a := byStates[pm.States]
		if a == nil {
			a = &acc{}
			byStates[pm.States] = a
		}
		a.n++
		a.total += pm.CrawlTime
		a.nonetwork += pm.CrawlTime - pm.NetworkTime
		if pm.States > maxStates {
			maxStates = pm.States
		}
	}
	fmt.Fprintf(e.out, "%-8s %-8s %-14s %-18s\n", "states", "videos", "avg time (ms)", "avg w/o net (ms)")
	for s := 1; s <= maxStates; s++ {
		a := byStates[s]
		if a == nil {
			continue
		}
		fmt.Fprintf(e.out, "%-8d %-8d %-14.2f %-18.2f\n", s, a.n,
			ms(a.total)/float64(a.n), ms(a.nonetwork)/float64(a.n))
	}
	fmt.Fprintln(e.out, "(shape: linear growth with states; network dominates)")
	return nil
}

// cacheSeries runs the F7.5–F7.7 prefix series with and without the
// hot-node policy.
func cacheSeries(e *env) (prefixes []int, off, on []*core.Metrics, err error) {
	prefixes = e.scaledPrefixes([]int{10, 20, 40, 60, 80, 100}, 100)
	for _, n := range prefixes {
		mOff, _, err := e.crawl(n, core.Options{UseHotNode: false})
		if err != nil {
			return nil, nil, nil, err
		}
		mOn, _, err := e.crawl(n, core.Options{UseHotNode: true})
		if err != nil {
			return nil, nil, nil, err
		}
		off = append(off, mOff)
		on = append(on, mOn)
	}
	return prefixes, off, on, nil
}

// expF75 reproduces Figure 7.5: AJAX events resulting in network calls,
// with and without the caching policy.
func expF75(e *env) error {
	prefixes, off, on, err := cacheSeries(e)
	if err != nil {
		return err
	}
	fmt.Fprintf(e.out, "%-8s %-14s %-14s %-8s\n", "videos", "no-cache", "cache", "factor")
	for i, n := range prefixes {
		fmt.Fprintf(e.out, "%-8d %-14d %-14d %-8.2f\n", n,
			off[i].NetworkEvents, on[i].NetworkEvents,
			float64(off[i].NetworkEvents)/float64(max(1, on[i].NetworkEvents)))
	}
	fmt.Fprintln(e.out, "(paper at 100 videos: 1790 vs 359, factor ~5)")
	return nil
}

// expF76 reproduces Figure 7.6: network time with and without the
// hot-node policy.
func expF76(e *env) error {
	prefixes, off, on, err := cacheSeries(e)
	if err != nil {
		return err
	}
	fmt.Fprintf(e.out, "%-8s %-16s %-16s %-8s\n", "videos", "no-cache (ms)", "cache (ms)", "ratio")
	for i, n := range prefixes {
		fmt.Fprintf(e.out, "%-8d %-16.1f %-16.1f %-8.2f\n", n,
			ms(off[i].NetworkTime), ms(on[i].NetworkTime),
			ms(on[i].NetworkTime)/ms(off[i].NetworkTime))
	}
	fmt.Fprintln(e.out, "(paper: caching cuts network time to ~0.37x)")
	return nil
}

// expF77 reproduces Figure 7.7: crawled-state throughput with and without
// the hot-node policy.
func expF77(e *env) error {
	prefixes, off, on, err := cacheSeries(e)
	if err != nil {
		return err
	}
	fmt.Fprintf(e.out, "%-8s %-18s %-18s %-8s\n", "videos", "no-cache (st/s)", "cache (st/s)", "factor")
	for i, n := range prefixes {
		offT := float64(off[i].States) / off[i].CrawlTime.Seconds()
		onT := float64(on[i].States) / on[i].CrawlTime.Seconds()
		fmt.Fprintf(e.out, "%-8d %-18.2f %-18.2f %-8.2f\n", n, offT, onT, onT/offT)
	}
	fmt.Fprintln(e.out, "(paper: caching improves throughput ~1.6x)")
	return nil
}

// parallelCrawl crawls n videos with the MP architecture under REAL
// (small) latencies: virtual clocks cannot express overlapping waits, so
// the parallel experiments measure wall-clock with scaled-down sleeps.
func (e *env) parallelCrawl(n, lines int, opts core.Options) (time.Duration, *core.Metrics, error) {
	base := e.latBase / 20 // scale the simulated RTT down for wall-clock runs
	if base <= 0 {
		base = time.Millisecond
	}
	dir, err := mkTempDir()
	if err != nil {
		return 0, nil, err
	}
	defer rmTempDir(dir)
	parts, err := (&core.URLPartitioner{PartitionSize: max(1, n/(4*lines)), RootDir: dir}).Partition(e.urls(n))
	if err != nil {
		return 0, nil, err
	}
	mp := &core.MPCrawler{
		NewCrawler: func() *core.Crawler {
			f := fetch.NewInstrumented(&fetch.HandlerFetcher{Handler: e.site.Handler()}, fetch.RealClock{}, base, 0)
			return core.New(f, opts)
		},
		ProcLines:    lines,
		Partitions:   parts,
		FrontierSeed: e.frontSeed,
		BloomBits:    e.bloomBits,
	}
	start := time.Now()
	res := mp.Run(e.ctx)
	elapsed := time.Since(start)
	if err := res.Err(); err != nil {
		return 0, nil, err
	}
	return elapsed, res.Metrics, nil
}

// expT73 reproduces Table 7.3: parallel crawl times for traditional and
// AJAX crawling (4 process lines).
func expT73(e *env) error {
	n := min(e.videos, 100)
	tradT, tradM, err := e.parallelCrawl(n, 4, core.Options{Traditional: true})
	if err != nil {
		return err
	}
	ajaxT, ajaxM, err := e.parallelCrawl(n, 4, core.Options{UseHotNode: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(e.out, "%-16s %16s %16s %10s\n", "", "Par. Trad (ms)", "Par. AJAX (ms)", "ratio")
	fmt.Fprintf(e.out, "%-16s %16.1f %16.1f %10.2fx\n", "Total time", ms(tradT), ms(ajaxT), ms(ajaxT)/ms(tradT))
	fmt.Fprintf(e.out, "%-16s %16.3f %16.3f %10.2fx\n", "Mean per page",
		ms(tradT)/float64(n), ms(ajaxT)/float64(n), ms(ajaxT)/ms(tradT))
	fmt.Fprintf(e.out, "%-16s %16.3f %16.3f %10.2fx\n", "Mean per state",
		ms(tradT)/float64(tradM.States), ms(ajaxT)/float64(ajaxM.States),
		(ms(ajaxT)/float64(ajaxM.States))/(ms(tradT)/float64(tradM.States)))
	fmt.Fprintln(e.out, "(paper: x8.80 per page, x2.11 per state)")
	return nil
}

// expF78 reproduces Figure 7.8: mean per-video crawl time, serial vs
// parallel, for both crawling flavors.
func expF78(e *env) error {
	n := min(e.videos, 100)
	rows := []struct {
		name  string
		opts  core.Options
		lines [2]int
	}{
		{"Traditional", core.Options{Traditional: true}, [2]int{1, 4}},
		{"AJAX", core.Options{UseHotNode: true}, [2]int{1, 4}},
	}
	fmt.Fprintf(e.out, "%-14s %-18s %-18s %-10s\n", "mode", "serial (ms/video)", "parallel (ms/video)", "gain")
	for _, r := range rows {
		serial, _, err := e.parallelCrawl(n, r.lines[0], r.opts)
		if err != nil {
			return err
		}
		parallel, _, err := e.parallelCrawl(n, r.lines[1], r.opts)
		if err != nil {
			return err
		}
		sm := ms(serial) / float64(n)
		pm := ms(parallel) / float64(n)
		fmt.Fprintf(e.out, "%-14s %-18.3f %-18.3f %-10.1f%%\n", r.name, sm, pm, 100*(1-pm/sm))
	}
	fmt.Fprintln(e.out, "(paper: parallel 27.5% lower for traditional, 25.6% for AJAX)")
	return nil
}
