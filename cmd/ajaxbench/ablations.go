package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"ajaxcrawl/internal/browser"
	"ajaxcrawl/internal/core"
	"ajaxcrawl/internal/dom"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/html"
	"ajaxcrawl/internal/index"
	"ajaxcrawl/internal/query"
	"ajaxcrawl/internal/webapp"
)

func init() {
	register("ablate-hotnode", "hot-call cache keyed by (fn,args) vs by URL vs off", ablateHotNode)
	register("ablate-dedup", "duplicate detection: canonical hash vs full-tree compare", ablateDedup)
	register("ablate-idf", "sharded ranking: global idf correction vs local idf", ablateIDF)
	register("ablate-compress", "index serialization: gob vs delta+varint", ablateCompress)
	register("ablate-recrawl", "repetitive crawling: profile-guided second session", ablateRecrawl)
	register("ablate-neardup", "near-duplicate state merging vs granular-event explosion", ablateNearDup)
}

// urlKeyHook is the strawman alternative to the thesis's stack-based hot
// node cache: key responses by request URL. On this application both
// collapse the same repeats (a single hot node); the ablation shows the
// stack key costs nothing while staying faithful to Alg. 4.2.1 — and
// reports the two policies' hit rates side by side.
type urlKeyHook struct {
	cache map[string]string
	hits  int
}

func (h *urlKeyHook) BeforeSend(p *browser.Page, req *browser.XHRRequest) (string, bool) {
	body, ok := h.cache[req.URL]
	if ok {
		h.hits++
	}
	return body, ok
}

func (h *urlKeyHook) AfterSend(p *browser.Page, req *browser.XHRRequest, body string) {
	h.cache[req.URL] = body
}

func ablateHotNode(e *env) error {
	n := min(e.videos, 60)
	urls := e.urls(n)

	type variant struct {
		name string
		mk   func(p *browser.Page) // installs the policy on a page
	}
	stackHits := 0
	variants := []variant{
		{"no-cache", func(p *browser.Page) {}},
		{"stack-key (thesis)", func(p *browser.Page) {
			c := core.NewHotNodeCache()
			p.XHR = hookCounter{c.Hook(), &stackHits}
		}},
		{"url-key", func(p *browser.Page) {
			p.XHR = &urlKeyHook{cache: map[string]string{}}
		}},
	}
	fmt.Fprintf(e.out, "%-20s %-10s %-12s %-10s\n", "policy", "states", "net calls", "sends")
	for _, v := range variants {
		states, calls, sends := 0, 0, 0
		for _, u := range urls {
			p := browser.NewPage(e.plain())
			v.mk(p)
			g, err := crawlOnePage(e.ctx, p, u)
			if err != nil {
				return err
			}
			states += g.NumStates()
			calls += p.NetworkCalls
			sends += p.XHRSends
		}
		fmt.Fprintf(e.out, "%-20s %-10d %-12d %-10d\n", v.name, states, calls, sends)
	}
	fmt.Fprintln(e.out, "(both cache keyings collapse the single-hot-node app identically;")
	fmt.Fprintln(e.out, " the stack key additionally distinguishes functions, which URL keying cannot)")
	return nil
}

type hookCounter struct {
	inner browser.XHRHook
	hits  *int
}

func (h hookCounter) BeforeSend(p *browser.Page, req *browser.XHRRequest) (string, bool) {
	body, ok := h.inner.BeforeSend(p, req)
	if ok {
		*h.hits++
	}
	return body, ok
}

func (h hookCounter) AfterSend(p *browser.Page, req *browser.XHRRequest, body string) {
	h.inner.AfterSend(p, req, body)
}

// crawlOnePage is a minimal BFS crawl (MaxStates 11) over an
// already-configured page, used by the hot-node ablation so the policy
// hook can be swapped freely.
func crawlOnePage(ctx context.Context, p *browser.Page, url string) (*graphLite, error) {
	if err := p.Load(ctx, url); err != nil {
		return nil, err
	}
	if err := p.RunOnLoad(ctx); err != nil {
		return nil, err
	}
	g := &graphLite{seen: map[dom.Hash]bool{}}
	g.add(p.Hash())
	type st struct{ snap *browser.Snapshot }
	queue := []st{{p.Snapshot()}}
	for len(queue) > 0 && g.NumStates() < 11 {
		cur := queue[0]
		queue = queue[1:]
		p.Restore(cur.snap)
		events := p.Events(nil)
		for _, ev := range events {
			if g.NumStates() >= 11 {
				break
			}
			p.Restore(cur.snap)
			changed, err := p.Trigger(ctx, ev)
			if err != nil || !changed {
				continue
			}
			if g.add(p.Hash()) {
				queue = append(queue, st{p.Snapshot()})
			}
		}
	}
	return g, nil
}

type graphLite struct{ seen map[dom.Hash]bool }

// NumStates returns the number of distinct states seen.
func (g *graphLite) NumStates() int { return len(g.seen) }

func (g *graphLite) add(h dom.Hash) bool {
	if g.seen[h] {
		return false
	}
	g.seen[h] = true
	return true
}

// ablateDedup compares the cost of duplicate-state detection by canonical
// hash (the thesis's choice, §3.2) against full structural DOM
// comparison, on the real state DOMs of crawled videos.
func ablateDedup(e *env) error {
	n := min(e.videos, 20)
	// Collect the state DOMs of each video by re-rendering its fragments.
	var docs []*dom.Node
	for i := 0; i < n; i++ {
		v := e.site.Video(i)
		page := e.site.RenderWatchPage(v)
		doc := html.Parse(page)
		docs = append(docs, doc)
		for pnum := 2; pnum <= len(v.Pages); pnum++ {
			d := doc.Clone()
			box := d.ElementByID("recent_comments")
			html.SetInnerHTML(box, e.site.RenderCommentFragment(v, pnum))
			docs = append(docs, d)
		}
	}
	const rounds = 20
	// Hash-based: hash every doc, compare hashes against all previous.
	start := time.Now()
	dups := 0
	for r := 0; r < rounds; r++ {
		seen := map[dom.Hash]bool{}
		dups = 0
		for _, d := range docs {
			h := dom.CanonicalHash(d)
			if seen[h] {
				dups++
			}
			seen[h] = true
		}
	}
	hashTime := time.Since(start) / rounds

	// Structural: compare every doc against all previous with dom.Equal.
	start = time.Now()
	sdups := 0
	for r := 0; r < rounds; r++ {
		var kept []*dom.Node
		sdups = 0
		for _, d := range docs {
			dup := false
			for _, k := range kept {
				if dom.Equal(k, d) {
					dup = true
					break
				}
			}
			if dup {
				sdups++
			} else {
				kept = append(kept, d)
			}
		}
	}
	eqTime := time.Since(start) / rounds

	fmt.Fprintf(e.out, "%-28s %-14s %-10s\n", "strategy", "time", "dups found")
	fmt.Fprintf(e.out, "%-28s %-14v %-10d\n", "canonical hash (thesis)", hashTime, dups)
	fmt.Fprintf(e.out, "%-28s %-14v %-10d\n", "full structural compare", eqTime, sdups)
	fmt.Fprintf(e.out, "speedup: %.1fx; both find the same duplicates: %v\n",
		float64(eqTime)/float64(hashTime), dups == sdups)
	return nil
}

// ablateIDF quantifies what the global idf correction (§6.5.2) buys:
// fraction of queries whose top result under local-idf sharded ranking
// differs from the single-index ground truth.
func ablateIDF(e *env) error {
	graphs, err := queryCorpus(e)
	if err != nil {
		return err
	}
	// Unbalanced shards stress idf divergence.
	cut := len(graphs) / 5
	if cut == 0 {
		cut = 1
	}
	shardA := index.Build(graphs[:cut], nil, 0)
	shardB := index.Build(graphs[cut:], nil, 0)
	single := query.NewEngine(index.Build(graphs, nil, 0))
	global := &query.Broker{Shards: []*index.Index{shardA, shardB}, W: query.DefaultWeights}
	local := &query.Broker{Shards: []*index.Index{shardA, shardB}, W: query.DefaultWeights, LocalIDF: true}

	queries := webapp.Queries()
	globalDiff, localDiff, evaluated := 0, 0, 0
	for _, q := range queries {
		want := single.Search(q)
		if len(want) == 0 {
			continue
		}
		evaluated++
		sameTop := func(rs []query.Result) bool {
			return len(rs) > 0 && rs[0].URL == want[0].URL && rs[0].State == want[0].State
		}
		if !sameTop(global.Search(q)) {
			globalDiff++
		}
		if !sameTop(local.Search(q)) {
			localDiff++
		}
	}
	fmt.Fprintf(e.out, "queries with results: %d\n", evaluated)
	fmt.Fprintf(e.out, "top-1 divergence vs single index: global idf %d, local idf %d\n", globalDiff, localDiff)
	fmt.Fprintln(e.out, "(global-idf correction should show zero divergence)")
	return nil
}

// ablateCompress compares the gob and the delta/varint-compressed index
// serializations: file size and load time, on a corpus crawled at the
// configured scale.
func ablateCompress(e *env) error {
	graphs, err := queryCorpus(e)
	if err != nil {
		return err
	}
	ix := index.Build(graphs, nil, 0)
	dir, err := mkTempDir()
	if err != nil {
		return err
	}
	defer rmTempDir(dir)
	gobPath := dir + "/idx.gob"
	binPath := dir + "/idx.bin"
	if err := ix.Save(gobPath); err != nil {
		return err
	}
	if err := ix.SaveCompressed(binPath); err != nil {
		return err
	}
	gobSize := fileSize(gobPath)
	binSize := fileSize(binPath)

	const rounds = 10
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := index.Load(gobPath); err != nil {
			return err
		}
	}
	gobLoad := time.Since(start) / rounds
	start = time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := index.LoadCompressed(binPath); err != nil {
			return err
		}
	}
	binLoad := time.Since(start) / rounds

	fmt.Fprintf(e.out, "%-24s %-14s %-14s\n", "format", "size (KiB)", "load time")
	fmt.Fprintf(e.out, "%-24s %-14.1f %-14v\n", "gob", float64(gobSize)/1024, gobLoad)
	fmt.Fprintf(e.out, "%-24s %-14.1f %-14v\n", "delta+varint", float64(binSize)/1024, binLoad)
	fmt.Fprintf(e.out, "size ratio: %.2fx smaller\n", float64(gobSize)/float64(binSize))
	return nil
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// ablateRecrawl measures the repetitive-crawling extension (thesis ch. 10
// future work): a second crawl session guided by the first session's
// event profile must produce the identical model with fewer invocations.
func ablateRecrawl(e *env) error {
	n := min(e.videos, 100)
	urls := e.urls(n)

	profile := core.NewCrawlProfile()
	s1 := core.New(e.plain(), core.Options{UseHotNode: true, RecordProfile: profile})
	g1, m1, err := s1.CrawlAll(e.ctx, urls)
	if err != nil {
		return err
	}
	s2 := core.New(e.plain(), core.Options{UseHotNode: true, PriorProfile: profile})
	g2, m2, err := s2.CrawlAll(e.ctx, urls)
	if err != nil {
		return err
	}
	identical := len(g1) == len(g2)
	for i := range g1 {
		if !identical || g1[i].NumStates() != g2[i].NumStates() {
			identical = false
			break
		}
	}
	fmt.Fprintf(e.out, "%-22s %-10s %-10s %-10s\n", "session", "events", "skipped", "states")
	fmt.Fprintf(e.out, "%-22s %-10d %-10d %-10d\n", "1 (recording)", m1.EventsTriggered, 0, m1.States)
	fmt.Fprintf(e.out, "%-22s %-10d %-10d %-10d\n", "2 (profile-guided)", m2.EventsTriggered, m2.EventsSkipped, m2.States)
	fmt.Fprintf(e.out, "identical models: %v; event invocations saved: %.1f%%\n",
		identical, 100*(1-float64(m2.EventsTriggered)/float64(m1.EventsTriggered)))
	fmt.Fprintln(e.out, "(the synthetic pagination has no dead events; sites with decorative")
	fmt.Fprintln(e.out, " handlers save more — see examples/recrawl for a 50%+ case)")
	return nil
}

// ablateNearDup measures near-duplicate state merging against the
// granular-events state explosion (thesis challenge #3): a site variant
// with an AJAX like counter makes every click a new exact-hash state;
// MinHash merging collapses the noise so the state budget reaches real
// comment pages.
func ablateNearDup(e *env) error {
	cfg := webapp.DefaultConfig(min(e.videos, 60), e.seed)
	cfg.WithLikeButton = true
	site := webapp.New(cfg)
	f := &fetch.HandlerFetcher{Handler: site.Handler()}
	var urls []string
	for i := 0; i < site.NumVideos(); i++ {
		urls = append(urls, webapp.WatchURL(site.VideoID(i)))
	}

	run := func(threshold float64) (*core.Metrics, int) {
		c := core.New(f, core.Options{UseHotNode: true, NearDupThreshold: threshold})
		graphs, m, err := c.CrawlAll(e.ctx, urls)
		if err != nil {
			return nil, 0
		}
		// Count distinct comment pages reached across the corpus.
		pages := 0
		for _, g := range graphs {
			seen := map[int]bool{}
			for _, s := range g.States {
				for p := 1; p <= 11; p++ {
					if strings.Contains(s.Text, fmt.Sprintf("Comments (page %d of", p)) {
						seen[p] = true
					}
				}
			}
			pages += len(seen)
		}
		return m, pages
	}
	mOff, pagesOff := run(0)
	mOn, pagesOn := run(0.9)
	if mOff == nil || mOn == nil {
		return fmt.Errorf("crawl failed")
	}
	fmt.Fprintf(e.out, "%-22s %-10s %-14s %-14s %-10s\n", "policy", "states", "comment pages", "net calls", "merges")
	fmt.Fprintf(e.out, "%-22s %-10d %-14d %-14d %-10d\n", "exact hash only", mOff.States, pagesOff, mOff.NetworkCalls, 0)
	fmt.Fprintf(e.out, "%-22s %-10d %-14d %-14d %-10d\n", "minhash merge @0.9", mOn.States, pagesOn, mOn.NetworkCalls, mOn.NearDupMerges)
	fmt.Fprintln(e.out, "(merging spends the state budget on real pages instead of counter noise)")
	return nil
}
