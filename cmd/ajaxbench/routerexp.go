package main

import (
	"fmt"
	"runtime"
	"time"

	"ajaxcrawl/internal/index"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/query"
	"ajaxcrawl/internal/router"
	"ajaxcrawl/internal/webapp"
)

func init() {
	register("router", "sharded fan-out vs single snapshot: equality and merge overhead", expRouter)
}

// expRouter benchmarks the shard-router tier (DESIGN.md §5i) against
// the single-snapshot evaluation it must reproduce: the corpus is
// partitioned round-robin into 1/2/4 in-process shards, the full
// 100-query workload runs through router.Search (k=0, all results),
// and every merged ranking is compared bit-for-bit — URL, state and
// float64 score — against Broker.Search on the unpartitioned index.
// The timing columns price the fan-out: goroutine launch, per-shard
// pre-idf evaluation, and the global-idf merge, paid per query in
// exchange for horizontal capacity.
func expRouter(e *env) error {
	graphs, err := queryCorpus(e)
	if err != nil {
		return err
	}
	// Deterministic PageRank stand-in so partitioning cannot change the
	// base scores (PageRank is a whole-web input, computed fleet-wide).
	pr := make(map[string]float64, len(graphs))
	for i, g := range graphs {
		pr[g.URL] = 1.0 / float64(i+2)
	}
	queries := webapp.Queries()

	single := query.NewBroker([]*index.Index{index.Build(graphs, pr, 0)})
	want := make([][]query.Result, len(queries))
	totalResults := 0
	for i, q := range queries {
		want[i] = single.Search(q)
		totalResults += len(want[i])
	}

	newFleet := func(n int) (*router.Router, error) {
		parts := make([][]*model.Graph, n)
		for i, g := range graphs {
			parts[i%n] = append(parts[i%n], g)
		}
		topo := make([][]router.Backend, n)
		for i, part := range parts {
			snap := &query.ServeSnapshot{Broker: query.NewBroker([]*index.Index{index.Build(part, pr, 0)})}
			topo[i] = []router.Backend{router.LocalBackend{QS: query.NewServer(snap, query.CacheOptions{})}}
		}
		return router.New(router.Config{Shards: topo, Seed: 1})
	}

	// Best-of-5 batches over the whole workload; GC between fleets keeps
	// allocation noise out of the timings (same discipline as f7.10).
	const reps = 20
	timeWorkload := func(run func(q string)) time.Duration {
		runtime.GC()
		best := time.Duration(1 << 62)
		for b := 0; b < 5; b++ {
			start := time.Now()
			for r := 0; r < reps; r++ {
				for _, q := range queries {
					run(q)
				}
			}
			if d := time.Since(start) / reps; d < best {
				best = d
			}
		}
		return best
	}

	baseT := timeWorkload(func(q string) { single.Search(q) })
	fmt.Fprintf(e.out, "%-14s %-10s %-16s %-10s %-12s %-8s\n",
		"fleet", "results", "time/100q (ms)", "vs single", "mismatches", "hedges")
	fmt.Fprintf(e.out, "%-14s %-10d %-16.2f %-10s %-12s %-8s\n",
		"single broker", totalResults, ms(baseT), "1.00x", "-", "-")

	for _, n := range []int{1, 2, 4} {
		rt, err := newFleet(n)
		if err != nil {
			return err
		}
		// Equality pass, outside the timed loop: the differential check
		// is the experiment's correctness gate, the timing its payload.
		mismatches, got, hedges := 0, 0, 0
		for i, q := range queries {
			m, err := rt.Search(e.ctx, q, 0)
			if err != nil {
				return fmt.Errorf("router %d shards, q=%q: %w", n, q, err)
			}
			got += len(m.Results)
			hedges += m.Hedges
			if len(m.Results) != len(want[i]) {
				mismatches++
				continue
			}
			for j := range want[i] {
				r := m.Results[j]
				if r.URL != want[i][j].URL || r.State != want[i][j].State || r.Score != want[i][j].Score {
					mismatches++
					break
				}
			}
		}
		shardT := timeWorkload(func(q string) { _, _ = rt.Search(e.ctx, q, 0) })
		fmt.Fprintf(e.out, "%-14s %-10d %-16.2f %-10s %-12d %-8d\n",
			fmt.Sprintf("%d shard(s)", n), got, ms(shardT),
			fmt.Sprintf("%.2fx", float64(shardT)/float64(baseT)), mismatches, hedges)
		if mismatches > 0 {
			return fmt.Errorf("router: %d/%d rankings diverged from the single snapshot on %d shards", mismatches, len(queries), n)
		}
	}
	fmt.Fprintln(e.out, "(shape: identical rankings at every shard count; fan-out overhead grows with shards)")
	return nil
}
