// Command ajaxbench regenerates every table and figure of the thesis's
// evaluation chapter (ch. 7) on the synthetic YouTube-like site, plus the
// ablation experiments called out in DESIGN.md — and doubles as the
// repo's perf harness: -report emits a versioned BENCH_<n>.json artifact
// (per-phase wall/CPU/alloc, span aggregates, registry snapshot) and
// -compare diffs two artifacts with tolerance bands, exiting non-zero on
// regression so CI can gate.
//
// Usage:
//
//	ajaxbench -exp t7.2 -videos 500
//	ajaxbench -exp all -videos 200 > results.txt
//	ajaxbench -exp t7.1,t7.2,t7.5 -videos 60 -report BENCH_7.json
//	ajaxbench -compare BENCH_6.json -compare-to BENCH_7.json
//	ajaxbench -exp t7.1,t7.2,t7.5 -videos 60 -compare BENCH_6.json
//
// Experiments (paper section in parentheses):
//
//	t7.1  dataset statistics (Table 7.1)
//	f7.1  videos per comment-page count (Figure 7.1)
//	f7.2  states & events vs crawled videos (Figure 7.2)
//	t7.2  crawl overhead traditional vs AJAX (Table 7.2)
//	f7.3  distribution of per-page crawl times (Figure 7.3)
//	f7.4  crawl time vs number of states (Figure 7.4)
//	f7.5  events causing network calls, cache on/off (Figure 7.5)
//	f7.6  network time, cache on/off (Figure 7.6)
//	f7.7  state throughput, cache on/off (Figure 7.7)
//	t7.3  parallel crawl times (Table 7.3)
//	f7.8  parallel vs serial mean crawl time (Figure 7.8)
//	t7.4  query occurrences first page vs all pages (Table 7.4)
//	t7.5  query processing times (Table 7.5)
//	f7.9  query throughput trad vs AJAX (Figure 7.9)
//	f7.10 relative throughput vs crawled states (Figure 7.10)
//	f7.11 1-RelRecall vs crawled states (Figure 7.11)
//	ablate-hotnode  hot-call cache keying strategies
//	ablate-dedup    hash vs structural duplicate detection
//	ablate-idf      global vs local idf in sharded ranking
//	neardup         noisy-app state collapse: exact vs brute-force vs LSH
//	router          sharded fan-out vs single snapshot: equality and overhead
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"ajaxcrawl/internal/core"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/obs/report"
	"ajaxcrawl/internal/webapp"
)

type env struct {
	ctx context.Context
	// out receives every experiment table; with -json the tables move
	// here (stderr) while stdout carries exactly one JSON document. The
	// writer is threaded explicitly so report/JSON output can never
	// interleave with table bytes.
	out     io.Writer
	site    *webapp.Site
	videos  int
	seed    int64
	latBase time.Duration
	latPerK time.Duration
	// Resilience knobs (zero-valued unless the -retries /
	// -breaker-threshold / -fault-rate flags are set): every experiment
	// crawl then runs the whole fault-tolerant stack, so tables can be
	// regenerated under chaos to measure the overhead of recovery.
	retry     *fetch.RetryPolicy
	breaker   *fetch.BreakerConfig
	faultRate float64
	// Frontier knobs for the parallel experiments (-frontier-seed,
	// -bloom-bits); zero values select the scheduler defaults.
	frontSeed int64
	bloomBits int
	// Near-duplicate knobs (-neardup, -neardup-bands, -sketch): a
	// non-zero threshold turns sketch-based state merging on for every
	// experiment crawl that does not set its own admission policy.
	nearDup      float64
	nearDupBands int
	sketch       core.SketchKind
}

// experiment is one runnable table/figure reproduction.
type experiment struct {
	id   string
	desc string
	run  func(*env) error
}

var experiments []experiment

func register(id, desc string, run func(*env) error) {
	experiments = append(experiments, experiment{id: id, desc: desc, run: run})
}

func main() {
	var (
		exp         = flag.String("exp", "", "experiment id(s), comma-separated (or 'all'); empty lists experiments")
		videos      = flag.Int("videos", 200, "dataset size in videos (paper: 10000)")
		seed        = flag.Int64("seed", 2008, "site generation seed")
		base        = flag.Duration("latency", 60*time.Millisecond, "simulated per-request base latency")
		perKB       = flag.Duration("latency-per-kb", 4*time.Millisecond, "simulated latency per KiB of body")
		verbose     = flag.Bool("v", false, "live span lines on stderr")
		metricsAddr = flag.String("metrics-addr", "", "serve /debug/metrics, /debug/status, /debug/trace/recent and pprof on this address")
		tracePath   = flag.String("trace", "", "write every span to this JSONL file")
		jsonOut     = flag.Bool("json", false, "print the final registry snapshot (plus the comparison verdict, when comparing) as one JSON document on stdout (tables move to stderr)")
		retries     = flag.Int("retries", 0, "retry transient fetch failures up to this many times per request (0 disables retrying)")
		retryBase   = flag.Duration("retry-base", 100*time.Millisecond, "initial retry backoff; doubles per retry with full jitter")
		breakerThr  = flag.Float64("breaker-threshold", 0, "per-host circuit-breaker failure-rate threshold in (0,1] (0 disables the breaker)")
		faultRate   = flag.Float64("fault-rate", 0, "inject transient fetch faults with this probability (chaos testing; seeded by -seed)")
		nearDup     = flag.Float64("neardup", 0, "merge states whose sketch similarity reaches this threshold in (0,1] (0 disables; 0.9 with the default minhash sketch, ~0.5 with -sketch simhash)")
		nearDupB    = flag.Int("neardup-bands", 0, "near-dup candidate lookup: 0 = LSH index with bands derived from -neardup (recall-preserving), -1 = brute-force linear scan, >0 = force that many bands (probabilistic, may miss merges)")
		sketchKind  = flag.String("sketch", "minhash", "near-dup signature family: minhash (64 permutations) or simhash (64-bit fingerprint, cheaper and coarser)")
		frontSeed   = flag.Int64("frontier-seed", 0, "seed for the parallel crawler's work-stealing scheduler (0 = default seed 1)")
		bloomBits   = flag.Int("bloom-bits", 0, "frontier dedup bloom-filter size in bits, rounded to a power of two (0 = default)")
		reportPath  = flag.String("report", "", "write this run's perf RunReport artifact (BENCH_<n>.json) to this path")
		reportName  = flag.String("report-name", "", "artifact name stamped into the report (default: the -report file's base name)")
		comparePath = flag.String("compare", "", "baseline report to diff against: the fresh run's report, or -compare-to when given")
		compareTo   = flag.String("compare-to", "", "right-hand report for a file-vs-file comparison (no experiments run)")
		compareTol  = flag.Float64("compare-tol", 0, "comparator relative tolerance band (0 = default 0.25)")
		compareWarn = flag.Bool("compare-warn", false, "report-only comparison: print the diff but never fail the exit code (CI soft gate)")
		sampleEvery = flag.Duration("sample", 0, "sample frontier/line/runtime time series at this cadence into the report and /debug/status (0 = off)")
	)
	flag.Parse()

	tol := report.Tolerance{Rel: *compareTol}

	// Pure artifact-vs-artifact mode: no experiments, just the diff.
	if *comparePath != "" && *compareTo != "" {
		oldR, err := report.Load(*comparePath)
		if err != nil {
			fatalf("compare: %v", err)
		}
		newR, err := report.Load(*compareTo)
		if err != nil {
			fatalf("compare: %v", err)
		}
		cmp := report.Compare(oldR, newR, tol)
		if *jsonOut {
			if err := cmp.WriteJSON(os.Stdout); err != nil {
				fatalf("compare: %v", err)
			}
			_ = cmp.WriteTable(os.Stderr)
		} else if err := cmp.WriteTable(os.Stdout); err != nil {
			fatalf("compare: %v", err)
		}
		if cmp.Regressed() && !*compareWarn {
			os.Exit(3)
		}
		return
	}

	if *exp == "" {
		if *comparePath != "" || *reportPath != "" {
			fatalf("-report/-compare need experiments to run: pass -exp (or use -compare with -compare-to for a file-vs-file diff)")
		}
		fmt.Println("available experiments:")
		for _, e := range experiments {
			fmt.Printf("  %-16s %s\n", e.id, e.desc)
		}
		fmt.Println("  all              run everything")
		return
	}

	// Validate the requested ids up front, so `-exp t7.1,typo` fails
	// fast instead of after minutes of crawling.
	wanted := map[string]bool{}
	if *exp != "all" {
		known := map[string]bool{}
		for _, x := range experiments {
			known[x.id] = true
		}
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if !known[id] {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (run without -exp for the list)\n", id)
				os.Exit(2)
			}
			wanted[id] = true
		}
		if len(wanted) == 0 {
			fatalf("-exp %q selects no experiments", *exp)
		}
	}

	cli, err := obs.CLITelemetry(obs.CLIConfig{
		MetricsAddr:   *metricsAddr,
		TracePath:     *tracePath,
		Verbose:       *verbose,
		ProgressSpans: obs.CrawlProgressSpans,
		SampleEvery:   *sampleEvery,
	})
	if err != nil {
		fatalf("telemetry: %v", err)
	}

	// With -json (or -report to stdout) the experiment tables move to
	// stderr, so stdout carries exactly one machine-readable document.
	var tables io.Writer = os.Stdout
	if *jsonOut {
		tables = os.Stderr
	}

	// Ctrl-C aborts the experiment batch between (and within) runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx = obs.With(ctx, cli.Tel)
	cli.StartSampler(ctx)

	name := *reportName
	if name == "" && *reportPath != "" {
		name = strings.TrimSuffix(filepath.Base(*reportPath), ".json")
	}
	rec := report.NewRecorder(
		report.Meta{Name: name, Repo: "ajaxcrawl", Notes: "ajaxbench -exp " + *exp},
		report.Site{
			Videos: *videos, Seed: *seed,
			LatencyBaseMS:  float64(*base) / float64(time.Millisecond),
			LatencyPerKBMS: float64(*perKB) / float64(time.Millisecond),
		},
	)

	e := &env{
		ctx:          ctx,
		out:          tables,
		site:         webapp.New(webapp.DefaultConfig(*videos, *seed)),
		videos:       *videos,
		seed:         *seed,
		latBase:      *base,
		latPerK:      *perKB,
		faultRate:    *faultRate,
		frontSeed:    *frontSeed,
		bloomBits:    *bloomBits,
		nearDup:      *nearDup,
		nearDupBands: *nearDupB,
		sketch:       core.SketchKind(*sketchKind),
	}
	if *sketchKind != string(core.SketchMinHash) && *sketchKind != string(core.SketchSimHash) {
		fatalf("-sketch %q: want %s or %s", *sketchKind, core.SketchMinHash, core.SketchSimHash)
	}
	if *retries > 0 {
		e.retry = &fetch.RetryPolicy{MaxAttempts: *retries + 1, BaseDelay: *retryBase}
	}
	if *breakerThr > 0 {
		e.breaker = &fetch.BreakerConfig{FailureThreshold: *breakerThr}
	}
	var failed bool
	for _, x := range experiments {
		if *exp != "all" && !wanted[x.id] {
			continue
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interrupted; skipping remaining experiments")
			break
		}
		fmt.Fprintf(tables, "== %s: %s ==\n", x.id, x.desc)
		start := time.Now()
		endPhase := rec.StartPhase(x.id)
		err := x.run(e)
		endPhase(err)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", x.id, err)
			failed = true
		}
		fmt.Fprintf(tables, "-- %s done in %v --\n\n", x.id, time.Since(start).Round(time.Millisecond))
	}
	if err := cli.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "close trace: %v\n", err)
		failed = true
	}

	rep := rec.Finish(cli.Reg.Snapshot(), cli.Spans.Aggregates(), cli.Sampler.Snapshot())
	if *reportPath != "" {
		if err := rep.Save(*reportPath); err != nil {
			fatalf("report: %v", err)
		}
		fmt.Fprintf(os.Stderr, "perf report written to %s (%d phases, %d span types)\n",
			*reportPath, len(rep.Phases), len(rep.Spans))
	}

	var cmp *report.Comparison
	if *comparePath != "" {
		oldR, err := report.Load(*comparePath)
		if err != nil {
			fatalf("compare: %v", err)
		}
		cmp = report.Compare(oldR, rep, tol)
		if err := cmp.WriteTable(tables); err != nil {
			fatalf("compare: %v", err)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		// Without a comparison the document stays a bare registry
		// snapshot (the pre-report contract); with one, both travel in
		// a single wrapper document.
		var doc any = rep.Registry
		if cmp != nil {
			doc = struct {
				Registry   obs.Snapshot       `json:"registry"`
				Comparison *report.Comparison `json:"comparison"`
			}{rep.Registry, cmp}
		}
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	if cmp != nil && cmp.Regressed() && !*compareWarn {
		os.Exit(3)
	}
}

// ---- shared helpers ----

// instrumented builds a latency-simulating fetcher on a virtual clock,
// with fault injection underneath when -fault-rate is set (so injected
// outcomes are counted like real ones).
func (e *env) instrumented(clock fetch.Clock) *fetch.Instrumented {
	var inner fetch.Fetcher = &fetch.HandlerFetcher{Handler: e.site.Handler()}
	if e.faultRate > 0 {
		maxConsec := 0
		if e.retry != nil {
			maxConsec = e.retry.MaxAttempts - 1
		}
		inner = fetch.NewFaultFetcher(inner, fetch.FaultConfig{
			ErrorRate:      e.faultRate,
			MaxConsecutive: maxConsec,
			Seed:           e.seed,
		}, clock)
	}
	return fetch.NewInstrumented(inner, clock, e.latBase, e.latPerK)
}

// plain builds an uninstrumented in-process fetcher (no latency).
func (e *env) plain() fetch.Fetcher {
	return &fetch.HandlerFetcher{Handler: e.site.Handler()}
}

// urls returns the first n watch URLs.
func (e *env) urls(n int) []string {
	if n > e.site.NumVideos() {
		n = e.site.NumVideos()
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = webapp.WatchURL(e.site.VideoID(i))
	}
	return out
}

// crawl runs a crawl over the first n videos with a fresh virtual clock
// and returns the metrics and application models.
func (e *env) crawl(n int, opts core.Options) (*core.Metrics, []*model.Graph, error) {
	clock := &fetch.VirtualClock{}
	inst := e.instrumented(clock)
	opts.Clock = clock
	opts.RetryPolicy = e.retry
	opts.BreakerConfig = e.breaker
	if opts.NearDupThreshold == 0 && e.nearDup > 0 {
		opts.NearDupThreshold = e.nearDup
		opts.NearDupBands = e.nearDupBands
	}
	if opts.Sketch == "" {
		opts.Sketch = e.sketch
	}
	c := core.New(inst, opts)
	graphs, m, err := c.CrawlAll(e.ctx, e.urls(n))
	if err != nil {
		return nil, nil, err
	}
	return m, graphs, nil
}

// scaledPrefixes maps the paper's video-count series onto the configured
// dataset size (paper series: 20,40,60,80,100,250,500 over 10000).
func (e *env) scaledPrefixes(series []int, paperMax int) []int {
	var out []int
	for _, s := range series {
		n := s * e.videos / paperMax
		if n < 1 {
			n = 1
		}
		if n > e.videos {
			n = e.videos
		}
		if len(out) > 0 && out[len(out)-1] == n {
			continue
		}
		out = append(out, n)
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// mkTempDir/rmTempDir wrap the throwaway partition directories used by
// the parallel experiments.
func mkTempDir() (string, error) { return os.MkdirTemp("", "ajaxbench-*") }

func rmTempDir(dir string) { os.RemoveAll(dir) }

func sortedCopy(xs []time.Duration) []time.Duration {
	out := append([]time.Duration(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
