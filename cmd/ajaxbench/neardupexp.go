package main

import (
	"fmt"
	"time"

	"ajaxcrawl/internal/core"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/webapp"
)

func init() {
	register("neardup", "noisy-app collapse: exact vs brute-force vs LSH admission", expNearDup)
}

// expNearDup benchmarks the near-duplicate admission paths on the
// noisy-app workload (ROADMAP item 1): watch pages whose decor strip
// (timestamp/view-counter/ad-slot) mutates on every tracked event, so
// exact hashing burns the state budget on chrome variants. Three crawls
// over the same corpus compare exact-only admission, the brute-force
// linear scan (NearDupBands = -1), and the banded LSH index
// (NearDupBands = 0): the two merging paths must produce identical
// models — the index's pigeonhole layout keeps recall 1.0 on the
// verified path — while the index does strictly less similarity work
// (the "verified" column: exact Similarity computations).
func expNearDup(e *env) error {
	cfg := webapp.DefaultConfig(min(e.videos, 60), e.seed)
	cfg.NoisyDecor = true
	site := webapp.New(cfg)
	f := &fetch.HandlerFetcher{Handler: site.Handler()}
	var urls []string
	for i := 0; i < site.NumVideos(); i++ {
		urls = append(urls, webapp.WatchURL(site.VideoID(i)))
	}

	type result struct {
		m      *core.Metrics
		graphs []*model.Graph
		wall   time.Duration
	}
	// The fetcher is deliberately uninstrumented (no simulated latency):
	// wall time then reflects admission work, which is what the two
	// merging paths differ in.
	run := func(threshold float64, bands int) (result, error) {
		start := time.Now()
		graphs, m, err := core.New(f, core.Options{
			UseHotNode:       true,
			MaxStates:        11,
			NearDupThreshold: threshold,
			NearDupBands:     bands,
			Sketch:           e.sketch,
		}).CrawlAll(e.ctx, urls)
		if err != nil {
			return result{}, err
		}
		return result{m: m, graphs: graphs, wall: time.Since(start)}, nil
	}
	exact, err := run(0, 0)
	if err != nil {
		return err
	}
	brute, err := run(0.9, -1)
	if err != nil {
		return err
	}
	lsh, err := run(0.9, 0)
	if err != nil {
		return err
	}

	identical := len(brute.graphs) == len(lsh.graphs)
	for i := 0; identical && i < len(brute.graphs); i++ {
		bg, lg := brute.graphs[i], lsh.graphs[i]
		identical = len(bg.States) == len(lg.States)
		for j := 0; identical && j < len(bg.States); j++ {
			identical = bg.States[j].Hash == lg.States[j].Hash
		}
	}

	fmt.Fprintf(e.out, "%-22s %-8s %-8s %-10s %-10s %-8s %-10s\n",
		"admission", "states", "merges", "probes", "verified", "fp", "wall")
	row := func(name string, r result) {
		fmt.Fprintf(e.out, "%-22s %-8d %-8d %-10d %-10d %-8d %-10v\n",
			name, r.m.States, r.m.NearDupMerges, r.m.NearDupProbes,
			r.m.NearDupCandidates, r.m.NearDupFalsePositives, r.wall.Round(time.Millisecond))
	}
	row("exact hash only", exact)
	row("brute force @0.9", brute)
	row("lsh index @0.9", lsh)
	fmt.Fprintf(e.out, "identical models (brute vs lsh): %v; similarity work saved: %.1f%%\n",
		identical, 100*(1-float64(lsh.m.NearDupCandidates)/float64(brute.m.NearDupCandidates)))
	if !identical {
		return fmt.Errorf("neardup: LSH model diverged from the brute-force baseline")
	}
	if lsh.m.NearDupCandidates >= brute.m.NearDupCandidates {
		return fmt.Errorf("neardup: index did not reduce similarity work (%d vs %d verifications)",
			lsh.m.NearDupCandidates, brute.m.NearDupCandidates)
	}
	return nil
}
