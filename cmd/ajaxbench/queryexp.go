package main

import (
	"fmt"
	"runtime"
	"time"

	"ajaxcrawl/internal/core"
	"ajaxcrawl/internal/index"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/query"
	"ajaxcrawl/internal/webapp"
)

func init() {
	register("t7.4", "query occurrences first page vs all pages (Table 7.4)", expT74)
	register("t7.5", "query processing times trad vs AJAX (Table 7.5)", expT75)
	register("f7.9", "query throughput trad vs AJAX (Figure 7.9)", expF79)
	register("f7.10", "relative query throughput vs crawled states (Figure 7.10)", expF710)
	register("f7.11", "1-RelRecall vs crawled states (Figure 7.11)", expF711)
}

// queryCorpus crawls the corpus once (AJAX + hot node) and returns the
// graphs; the query experiments build their indexes from it.
func queryCorpus(e *env) ([]*model.Graph, error) {
	// The thesis's query experiments use the first 2500 of 10000 videos;
	// scale: use all configured videos.
	_, graphs, err := e.crawl(e.videos, core.Options{UseHotNode: true})
	return graphs, err
}

// expT74 reproduces Table 7.4: for the most popular queries, occurrences
// on the first comment page and across all pages.
func expT74(e *env) error {
	queries := webapp.Queries()
	fmt.Fprintf(e.out, "%-5s %-16s %-22s %-20s\n", "ID", "Query", "Occurrences 1st page", "Occurrences all pages")
	for i, q := range queries[:11] {
		first, all := e.site.QueryOccurrences(q, e.videos)
		fmt.Fprintf(e.out, "Q%-4d %-16s %-22d %-20d\n", i+1, q, first, all)
	}
	fmt.Fprintln(e.out, "(shape: all-pages occurrences several times the first-page count)")
	return nil
}

// buildIndexes builds the traditional (1-state) and AJAX (all states)
// indexes over crawled graphs.
func buildIndexes(graphs []*model.Graph) (trad, ajax *index.Index) {
	trad = index.Build(graphs, nil, 1)
	ajax = index.Build(graphs, nil, 0)
	return trad, ajax
}

// timeQueries runs each query `reps` times on the engine and returns
// per-query mean times and result counts.
func timeQueries(eng *query.Engine, queries []string, reps int) (times []time.Duration, counts []int) {
	times = make([]time.Duration, len(queries))
	counts = make([]int, len(queries))
	for i, q := range queries {
		// Warm up once (also records the count).
		counts[i] = len(eng.Search(q))
		start := time.Now()
		for r := 0; r < reps; r++ {
			eng.Search(q)
		}
		times[i] = time.Since(start) / time.Duration(reps)
	}
	return times, counts
}

// expT75 reproduces Table 7.5: per-query processing times on the
// traditional and the AJAX index.
func expT75(e *env) error {
	graphs, err := queryCorpus(e)
	if err != nil {
		return err
	}
	tradIx, ajaxIx := buildIndexes(graphs)
	queries := webapp.Queries()[:11]
	const reps = 50
	tradT, tradC := timeQueries(query.NewEngine(tradIx), queries, reps)
	ajaxT, ajaxC := timeQueries(query.NewEngine(ajaxIx), queries, reps)

	fmt.Fprintf(e.out, "%-5s %-16s %14s %14s %8s %8s\n", "ID", "Query", "Trad (µs)", "AJAX (µs)", "Trad#", "AJAX#")
	for i, q := range queries {
		fmt.Fprintf(e.out, "Q%-4d %-16s %14.2f %14.2f %8d %8d\n", i+1, q,
			float64(tradT[i].Nanoseconds())/1e3, float64(ajaxT[i].Nanoseconds())/1e3,
			tradC[i], ajaxC[i])
	}
	fmt.Fprintln(e.out, "(shape: AJAX index slower in absolute query time, far more results)")
	return nil
}

// expF79 reproduces Figure 7.9: result throughput (results per second)
// for the popular queries on the traditional vs the AJAX index.
func expF79(e *env) error {
	graphs, err := queryCorpus(e)
	if err != nil {
		return err
	}
	tradIx, ajaxIx := buildIndexes(graphs)
	queries := webapp.Queries()[:11]
	const reps = 50
	tradT, tradC := timeQueries(query.NewEngine(tradIx), queries, reps)
	ajaxT, ajaxC := timeQueries(query.NewEngine(ajaxIx), queries, reps)

	fmt.Fprintf(e.out, "%-5s %-16s %16s %16s %8s %8s\n", "ID", "Query", "Trad (q/s)", "AJAX (q/s)", "Trad#", "AJAX#")
	for i, q := range queries {
		thr := func(t time.Duration) float64 {
			if t <= 0 {
				return 0
			}
			return 1 / t.Seconds()
		}
		fmt.Fprintf(e.out, "Q%-4d %-16s %16.0f %16.0f %8d %8d\n", i+1, q,
			thr(tradT[i]), thr(ajaxT[i]), tradC[i], ajaxC[i])
	}
	fmt.Fprintln(e.out, "(shape: traditional query throughput higher, although for far fewer results)")
	return nil
}

// statesSeries builds indexes limited to 1..11 states and evaluates the
// full 100-query workload on each, returning per-limit total results and
// total query time.
func statesSeries(e *env) (limits []int, results []int, times []time.Duration, err error) {
	graphs, err := queryCorpus(e)
	if err != nil {
		return nil, nil, nil, err
	}
	queries := webapp.Queries()
	const reps = 30
	for k := 1; k <= 11; k++ {
		ix := index.Build(graphs, nil, k)
		eng := query.NewEngine(ix)
		total := 0
		for _, q := range queries {
			total += len(eng.Search(q))
		}
		// GC between limits and best-of-5 batches keep allocation noise
		// out of the timings.
		runtime.GC()
		best := time.Duration(1 << 62)
		for b := 0; b < 5; b++ {
			start := time.Now()
			for r := 0; r < reps; r++ {
				for _, q := range queries {
					eng.Search(q)
				}
			}
			if d := time.Since(start) / reps; d < best {
				best = d
			}
		}
		limits = append(limits, k)
		results = append(results, total)
		times = append(times, best)
	}
	return limits, results, times, nil
}

// expF710 reproduces Figure 7.10: the relative query throughput of the
// AJAX index vs the traditional one as the number of crawled (indexed)
// states grows — the crawl-threshold tuning curve. Throughput is queries
// per second (Figure 7.9's metric); indexing more states makes each query
// slower, so the relative throughput decays from 1.
func expF710(e *env) error {
	limits, results, times, err := statesSeries(e)
	if err != nil {
		return err
	}
	base := times[0]
	fmt.Fprintf(e.out, "%-8s %-10s %-16s %-18s\n", "states", "results", "time/100q (ms)", "rel. throughput")
	threshold := -1
	for i, k := range limits {
		rel := float64(base) / float64(times[i])
		fmt.Fprintf(e.out, "%-8d %-10d %-16.2f %-18.3f\n", k, results[i], ms(times[i]), rel)
		if threshold < 0 && rel < 0.4 {
			threshold = k
		}
	}
	if threshold > 0 {
		fmt.Fprintf(e.out, "relative throughput crosses 0.4 at %d states (paper: ~5)\n", threshold)
	}
	fmt.Fprintln(e.out, "(shape: relative throughput decreases with states)")
	return nil
}

// expF711 reproduces Figure 7.11: 1 − RelRecall between the traditional
// index and indexes with k states, averaged over the 100-query workload.
func expF711(e *env) error {
	graphs, err := queryCorpus(e)
	if err != nil {
		return err
	}
	queries := webapp.Queries()
	// Result counts per query per limit.
	counts := make([][]int, 12) // counts[k][qi], k in 1..11
	for k := 1; k <= 11; k++ {
		eng := query.NewEngine(index.Build(graphs, nil, k))
		counts[k] = make([]int, len(queries))
		for qi, q := range queries {
			counts[k][qi] = len(eng.Search(q))
		}
	}
	fmt.Fprintf(e.out, "%-8s %-14s\n", "states", "1-RelRecall")
	prev := 0.0
	for k := 1; k <= 11; k++ {
		sum, n := 0.0, 0
		for qi := range queries {
			if counts[k][qi] == 0 {
				continue
			}
			sum += float64(counts[1][qi]) / float64(counts[k][qi])
			n++
		}
		if n == 0 {
			continue
		}
		oneMinus := 1 - sum/float64(n)
		fmt.Fprintf(e.out, "%-8d %-14.3f\n", k, oneMinus)
		if k > 1 && oneMinus+1e-9 < prev {
			fmt.Fprintf(e.out, "  (warning: non-monotone at %d states)\n", k)
		}
		prev = oneMinus
	}
	fmt.Fprintln(e.out, "(shape: increases with states with diminishing gradient; paper ~0.7 near 4-5 states)")
	return nil
}
