#!/usr/bin/env bash
# Docs-consistency gate: every CLI flag registered by a cmd/* binary
# must appear (backticked, with its dash) in OPERATIONS.md §1, so the
# runbook's flag tables stay in lockstep with the code. CI runs this as
# the docs-consistency job; run it locally after adding a flag.
#
# Flags are extracted statically from the flag.<Type>("name", ...)
# registration calls — the whole tree registers flags with string
# literals, so no binary needs to be built or executed.
set -euo pipefail
cd "$(dirname "$0")/.."

doc=OPERATIONS.md
status=0
for dir in cmd/*/; do
	bin=$(basename "$dir")
	flags=$(grep -rhoE 'flag\.(String|Bool|Int|Int64|Float64|Duration)\("[^"]+"' "$dir" |
		sed -E 's/.*\("([^"]+)".*/\1/' | sort -u)
	[ -z "$flags" ] && continue
	for f in $flags; do
		if ! grep -q -- "\`-$f\`" "$doc"; then
			echo "FAIL: $doc does not document \`-$f\` (registered by $bin)" >&2
			status=1
		fi
	done
done
if [ "$status" -eq 0 ]; then
	echo "flag docs OK: every registered cmd/* flag appears in $doc"
fi
exit $status
