package ajaxcrawl

// Integration tests: the full pipeline across package boundaries,
// including every persistence format — the flows the CLI tools drive.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ajaxcrawl/internal/core"
	"ajaxcrawl/internal/index"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/obs"
	"ajaxcrawl/internal/query"
	"ajaxcrawl/internal/serve"
	"ajaxcrawl/internal/webapp"
)

// TestPipelinePersistenceRoundTrip drives the exact flow of the CLIs:
// precrawl → partition → parallel crawl with models saved to disk →
// reload models → build index → save (gob and compressed) → reload →
// identical query results everywhere.
func TestPipelinePersistenceRoundTrip(t *testing.T) {
	site := webapp.New(webapp.DefaultConfig(25, 31))
	fetcher := NewHandlerFetcher(site.Handler())
	workDir := t.TempDir()

	// Phase 1-2: precrawl + partition (as cmd/ajaxcrawl does).
	pre := &core.Precrawler{
		Fetcher:  fetcher,
		StartURL: webapp.WatchURL(site.VideoID(0)),
		MaxPages: 12,
		KeepURL:  IsWatchURL,
	}
	preRes, err := pre.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := preRes.Save(workDir); err != nil {
		t.Fatal(err)
	}
	parts, err := (&core.URLPartitioner{PartitionSize: 4, RootDir: workDir}).Partition(preRes.URLs)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 3: parallel crawl, models serialized per partition.
	mp := &core.MPCrawler{
		NewCrawler: func() *core.Crawler {
			return core.New(fetcher, core.Options{UseHotNode: true, MaxStates: 4})
		},
		ProcLines:  3,
		Partitions: parts,
		SaveModels: true,
	}
	res := mp.Run(context.Background())
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	liveGraphs := res.Graphs()

	// Reload everything from disk (as cmd/ajaxsearch does).
	reloadedPre, err := core.LoadPrecrawl(workDir)
	if err != nil {
		t.Fatal(err)
	}
	var reloadedGraphs []*model.Graph
	for _, dir := range parts {
		gs, err := model.LoadAll(dir)
		if err != nil {
			t.Fatal(err)
		}
		reloadedGraphs = append(reloadedGraphs, gs...)
	}
	if len(reloadedGraphs) != len(liveGraphs) {
		t.Fatalf("reloaded %d graphs, crawled %d", len(reloadedGraphs), len(liveGraphs))
	}

	// Index from reloaded models with reloaded PageRank.
	ix := index.Build(reloadedGraphs, reloadedPre.PageRank, 0)

	// Persist the index both ways and reload.
	gobPath := filepath.Join(workDir, "idx.gob")
	binPath := filepath.Join(workDir, "idx.bin")
	if err := ix.Save(gobPath); err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveCompressed(binPath); err != nil {
		t.Fatal(err)
	}
	fromGob, err := index.Load(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := index.LoadCompressed(binPath)
	if err != nil {
		t.Fatal(err)
	}

	// All four index instances must answer the workload identically.
	engines := map[string]*query.Engine{
		"live":       query.NewEngine(index.Build(liveGraphs, reloadedPre.PageRank, 0)),
		"reloaded":   query.NewEngine(ix),
		"gob":        query.NewEngine(fromGob),
		"compressed": query.NewEngine(fromBin),
	}
	for _, q := range webapp.Queries()[:20] {
		want := engines["live"].Search(q)
		for name, eng := range engines {
			got := eng.Search(q)
			if len(got) != len(want) {
				t.Fatalf("q=%q: %s returned %d results, live %d", q, name, len(got), len(want))
			}
			for i := range want {
				if got[i].URL != want[i].URL || got[i].State != want[i].State {
					t.Fatalf("q=%q: %s result %d = %v, want %v", q, name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestReconstructAllResults replays the event path of every search hit
// on a small corpus and checks each reconstructed state contains the
// query terms — the §5.4 contract, exhaustively.
func TestReconstructAllResults(t *testing.T) {
	_, eng := buildTestEngine(t, 30, 12)
	checked := 0
	for _, q := range []string{"wow", "funny", "kiss"} {
		for _, r := range eng.SearchTopK(q, 3) {
			html, err := eng.Reconstruct(context.Background(), r)
			if err != nil {
				t.Fatalf("reconstruct %v: %v", r, err)
			}
			lower := strings.ToLower(html)
			for _, term := range strings.Fields(q) {
				if !strings.Contains(lower, term) {
					t.Fatalf("reconstructed %v missing term %q", r, term)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no results to reconstruct in this sample")
	}
	t.Logf("reconstructed and verified %d result states", checked)
}

// TestEngineDeterminism pins the determinism guarantee: two engines
// built with identical configuration return identical rankings.
func TestEngineDeterminism(t *testing.T) {
	build := func() *Engine {
		site := NewSimSite(20, 55)
		eng, err := BuildEngine(context.Background(), Config{
			Fetcher:       NewHandlerFetcher(site.Handler()),
			StartURL:      site.VideoURL(0),
			MaxPages:      10,
			PartitionSize: 3,
			ProcLines:     3,
			Crawl:         CrawlOptions{UseHotNode: true, MaxStates: 4},
			KeepURL:       IsWatchURL,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	a, b := build(), build()
	if a.NumStates() != b.NumStates() {
		t.Fatalf("state counts differ: %d vs %d", a.NumStates(), b.NumStates())
	}
	for _, q := range []string{"wow", "dance", "music love"} {
		ra, rb := a.Search(q), b.Search(q)
		if len(ra) != len(rb) {
			t.Fatalf("q=%q: result counts differ", q)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("q=%q: result %d differs: %v vs %v", q, i, ra[i], rb[i])
			}
		}
	}
}

// TestServeGoldenEndToEnd drives the complete serving story: crawl the
// synthetic webapp, publish a snapshot, boot the HTTP serving layer
// in-process, and pin down the end-to-end guarantees — the second
// request is a cache hit with a byte-identical body and no re-evaluation,
// a hot swap of the same snapshot changes the generation but not one
// response byte, and an entire re-run (fresh crawl, fresh snapshot,
// fresh server) reproduces every body byte-for-byte.
func TestServeGoldenEndToEnd(t *testing.T) {
	queries := []string{"funny dance", "wow", "music love", "kiss"}

	run := func(t *testing.T) map[string]string {
		// Deterministic crawl: fixed site seed and crawl options.
		site := NewSimSite(18, 909)
		eng, err := BuildEngine(context.Background(), Config{
			Fetcher:       NewHandlerFetcher(site.Handler()),
			StartURL:      site.VideoURL(0),
			MaxPages:      10,
			PartitionSize: 3,
			ProcLines:     3,
			Crawl:         CrawlOptions{UseHotNode: true, MaxStates: 4},
			KeepURL:       IsWatchURL,
		})
		if err != nil {
			t.Fatal(err)
		}
		snapDir := t.TempDir()
		man, err := eng.SaveSnapshot(snapDir)
		if err != nil {
			t.Fatal(err)
		}
		if len(man.Shards) == 0 || man.Models == "" {
			t.Fatalf("snapshot incomplete: %+v", man)
		}

		// A snapshot-loaded engine answers like the live one — the same
		// shards went to disk and came back.
		reloaded, err := LoadEngineSnapshot(snapDir, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			live, fromSnap := eng.SearchTopK(q, 10), reloaded.SearchTopK(q, 10)
			if len(live) != len(fromSnap) {
				t.Fatalf("q=%q: snapshot engine %d results, live %d", q, len(fromSnap), len(live))
			}
			for i := range live {
				if live[i] != fromSnap[i] {
					t.Fatalf("q=%q result %d: %v vs %v", q, i, fromSnap[i], live[i])
				}
			}
		}

		reg := obs.NewRegistry()
		srv, err := serve.New(serve.Config{SnapshotDir: snapDir}, obs.New(reg, nil))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		fetch := func(q string) (*http.Response, string) {
			resp, err := http.Get(ts.URL + "/search?q=" + strings.ReplaceAll(q, " ", "+") + "&k=10")
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("q=%q: status %d: %s", q, resp.StatusCode, body)
			}
			return resp, string(body)
		}

		bodies := make(map[string]string, len(queries))
		for _, q := range queries {
			resp1, body1 := fetch(q)
			if resp1.Header.Get(serve.HeaderCache) != "miss" {
				t.Fatalf("q=%q: first request was %q", q, resp1.Header.Get(serve.HeaderCache))
			}
			evals := reg.Counter("query.count").Value()
			resp2, body2 := fetch(q)
			if resp2.Header.Get(serve.HeaderCache) != "hit" {
				t.Fatalf("q=%q: repeat was %q", q, resp2.Header.Get(serve.HeaderCache))
			}
			if reg.Counter("query.count").Value() != evals {
				t.Fatalf("q=%q: cache hit re-ran the posting-list merge", q)
			}
			if body2 != body1 {
				t.Fatalf("q=%q: cached body differs:\n%s\nvs\n%s", q, body2, body1)
			}
			bodies[q] = body1
		}

		// Hot-swap the same snapshot: generation moves 1 → 2, the cache
		// restarts cold, and not one response byte changes.
		if swapped, err := srv.Reload(context.Background(), true); err != nil || !swapped {
			t.Fatalf("forced reload = %v, %v", swapped, err)
		}
		for _, q := range queries {
			resp, body := fetch(q)
			if resp.Header.Get(serve.HeaderGeneration) != "2" {
				t.Fatalf("q=%q: post-swap generation %q", q, resp.Header.Get(serve.HeaderGeneration))
			}
			if resp.Header.Get(serve.HeaderCache) != "miss" {
				t.Fatalf("q=%q: post-swap request hit the invalidated cache", q)
			}
			if body != bodies[q] {
				t.Fatalf("q=%q: body changed across hot swap of identical snapshot:\n%s\nvs\n%s", q, body, bodies[q])
			}
		}
		return bodies
	}

	first := run(t)
	second := run(t)
	for q, body := range first {
		if second[q] != body {
			t.Fatalf("q=%q: end-to-end responses differ across identical runs:\n%s\nvs\n%s", q, second[q], body)
		}
	}
}

// TestWorkDirLayout checks the on-disk layout of chapter 8: numbered
// partition directories each holding URLsToCrawl.txt and ajaxmodels.gob.
func TestWorkDirLayout(t *testing.T) {
	site := NewSimSite(12, 77)
	workDir := t.TempDir()
	_, err := BuildEngine(context.Background(), Config{
		Fetcher:       NewHandlerFetcher(site.Handler()),
		StartURL:      site.VideoURL(0),
		MaxPages:      9,
		PartitionSize: 3,
		WorkDir:       workDir,
		Crawl:         CrawlOptions{UseHotNode: true, MaxStates: 3},
		KeepURL:       IsWatchURL,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range []string{"1", "2", "3"} {
		if _, err := os.Stat(filepath.Join(workDir, part, core.URLFileName)); err != nil {
			t.Fatalf("partition %s missing URL list: %v", part, err)
		}
	}
}
