package ajaxcrawl

// Benchmarks: one testing.B target per table and figure of the thesis's
// evaluation chapter, at micro scale. `go test -bench=. -benchmem` runs
// them; cmd/ajaxbench regenerates the full paper-style tables at scale.
//
//	Table 7.1 / Fig 7.2  -> BenchmarkTable71DatasetCrawl
//	Fig 7.1              -> BenchmarkFigure71PageDistribution
//	Table 7.2 / Fig 7.3  -> BenchmarkCrawlTraditional, BenchmarkCrawlAJAX
//	Fig 7.4              -> BenchmarkCrawlManyStates
//	Fig 7.5-7.7          -> BenchmarkHotNodeOff, BenchmarkHotNodeOn
//	Table 7.3 / Fig 7.8  -> BenchmarkParallelCrawl1Line, ...4Lines
//	Table 7.4            -> BenchmarkQueryOccurrences
//	Table 7.5 / Fig 7.9  -> BenchmarkQueryTraditionalIndex, ...AJAXIndex
//	Fig 7.10 / Fig 7.11  -> BenchmarkIndexStates1, ...States11,
//	                        BenchmarkRecallSweep
//	Result aggregation   -> BenchmarkReconstruct

import (
	"context"
	"testing"

	"ajaxcrawl/internal/core"
	"ajaxcrawl/internal/index"
	"ajaxcrawl/internal/model"
	"ajaxcrawl/internal/query"
	"ajaxcrawl/internal/webapp"
)

const (
	benchVideos = 15
	benchSeed   = 424242
)

func benchSite() *webapp.Site {
	return webapp.New(webapp.DefaultConfig(benchVideos, benchSeed))
}

func benchURLs(s *webapp.Site, n int) []string {
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		urls[i] = webapp.WatchURL(s.VideoID(i))
	}
	return urls
}

// benchGraphs crawls the bench corpus once (shared across benchmarks via
// sync-free recomputation; crawling is deterministic).
func benchGraphs(b *testing.B, opts core.Options) []*model.Graph {
	b.Helper()
	s := benchSite()
	c := core.New(NewHandlerFetcher(s.Handler()), opts)
	graphs, _, err := c.CrawlAll(context.Background(), benchURLs(s, benchVideos))
	if err != nil {
		b.Fatal(err)
	}
	return graphs
}

// BenchmarkTable71DatasetCrawl measures the full AJAX crawl that gathers
// the Table 7.1 dataset statistics (also the Fig 7.2 series generator).
func BenchmarkTable71DatasetCrawl(b *testing.B) {
	s := benchSite()
	urls := benchURLs(s, benchVideos)
	f := NewHandlerFetcher(s.Handler())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := core.New(f, core.Options{UseHotNode: true})
		if _, m, err := c.CrawlAll(context.Background(), urls); err != nil || m.States == 0 {
			b.Fatalf("crawl failed: %v", err)
		}
	}
}

// BenchmarkFigure71PageDistribution measures dataset-statistics
// generation (the Figure 7.1 histogram source).
func BenchmarkFigure71PageDistribution(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := webapp.New(webapp.DefaultConfig(benchVideos, benchSeed+int64(i)))
		if st := s.DatasetStats(benchVideos); st.TotalStates == 0 {
			b.Fatal("empty stats")
		}
	}
}

// BenchmarkCrawlTraditional is the Table 7.2 baseline: JavaScript off,
// first state only.
func BenchmarkCrawlTraditional(b *testing.B) {
	s := benchSite()
	f := NewHandlerFetcher(s.Handler())
	url := webapp.WatchURL(s.VideoID(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := core.New(f, core.Options{Traditional: true})
		if _, _, err := c.CrawlPage(context.Background(), url); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrawlAJAX is the Table 7.2 treatment: full event-driven crawl
// of one page (Fig 7.3's per-page cost).
func BenchmarkCrawlAJAX(b *testing.B) {
	s := benchSite()
	f := NewHandlerFetcher(s.Handler())
	url := webapp.WatchURL(s.VideoID(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := core.New(f, core.Options{UseHotNode: true})
		if _, _, err := c.CrawlPage(context.Background(), url); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrawlManyStates crawls the corpus video with the most comment
// pages — the Fig 7.4 "crawl time grows with states" worst case.
func BenchmarkCrawlManyStates(b *testing.B) {
	s := benchSite()
	best := 0
	for i := 0; i < s.NumVideos(); i++ {
		if len(s.Video(i).Pages) > len(s.Video(best).Pages) {
			best = i
		}
	}
	f := NewHandlerFetcher(s.Handler())
	url := webapp.WatchURL(s.VideoID(best))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := core.New(f, core.Options{UseHotNode: true})
		if _, _, err := c.CrawlPage(context.Background(), url); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotNodeOff / BenchmarkHotNodeOn are the Fig 7.5–7.7 pair: the
// same crawl with the caching policy off and on. Compare ns/op and the
// reported net_calls metric.
func BenchmarkHotNodeOff(b *testing.B) { benchHotNode(b, false) }

// BenchmarkHotNodeOn enables the hot-node cache.
func BenchmarkHotNodeOn(b *testing.B) { benchHotNode(b, true) }

func benchHotNode(b *testing.B, on bool) {
	s := benchSite()
	urls := benchURLs(s, benchVideos)
	f := NewHandlerFetcher(s.Handler())
	b.ReportAllocs()
	b.ResetTimer()
	var calls int
	for i := 0; i < b.N; i++ {
		c := core.New(f, core.Options{UseHotNode: on})
		_, m, err := c.CrawlAll(context.Background(), urls)
		if err != nil {
			b.Fatal(err)
		}
		calls = m.NetworkCalls
	}
	b.ReportMetric(float64(calls), "net_calls")
}

// BenchmarkParallelCrawl1Line / 4Lines are the Table 7.3 / Fig 7.8 pair.
func BenchmarkParallelCrawl1Line(b *testing.B) { benchParallel(b, 1) }

// BenchmarkParallelCrawl4Lines runs four process lines.
func BenchmarkParallelCrawl4Lines(b *testing.B) { benchParallel(b, 4) }

func benchParallel(b *testing.B, lines int) {
	s := benchSite()
	urls := benchURLs(s, benchVideos)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		parts, err := (&core.URLPartitioner{PartitionSize: 4, RootDir: dir}).Partition(urls)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		mp := &core.MPCrawler{
			NewCrawler: func() *core.Crawler {
				return core.New(NewHandlerFetcher(s.Handler()), core.Options{UseHotNode: true})
			},
			ProcLines:  lines,
			Partitions: parts,
		}
		if res := mp.Run(context.Background()); res.Err() != nil {
			b.Fatal(res.Err())
		}
	}
}

// BenchmarkQueryOccurrences measures the Table 7.4 occurrence counting.
func BenchmarkQueryOccurrences(b *testing.B) {
	s := benchSite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, all := s.QueryOccurrences("wow", benchVideos); all < 0 {
			b.Fatal("impossible")
		}
	}
}

// BenchmarkQueryTraditionalIndex / AJAXIndex are the Table 7.5 / Fig 7.9
// pair: the 11 popular queries against the 1-state and the full index.
func BenchmarkQueryTraditionalIndex(b *testing.B) { benchQueries(b, 1) }

// BenchmarkQueryAJAXIndex queries the all-states index.
func BenchmarkQueryAJAXIndex(b *testing.B) { benchQueries(b, 0) }

func benchQueries(b *testing.B, maxStates int) {
	graphs := benchGraphs(b, core.Options{UseHotNode: true})
	eng := query.NewEngine(index.Build(graphs, nil, maxStates))
	qs := webapp.Queries()[:11]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			eng.Search(q)
		}
	}
}

// BenchmarkIndexStates1 / BenchmarkIndexStates11 bound the Fig 7.10 index
// construction sweep.
func BenchmarkIndexStates1(b *testing.B) { benchIndexBuild(b, 1) }

// BenchmarkIndexStates11 builds the full 11-state index.
func BenchmarkIndexStates11(b *testing.B) { benchIndexBuild(b, 11) }

func benchIndexBuild(b *testing.B, maxStates int) {
	graphs := benchGraphs(b, core.Options{UseHotNode: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := index.Build(graphs, nil, maxStates)
		if ix.TotalStates == 0 {
			b.Fatal("empty index")
		}
	}
}

// BenchmarkRecallSweep is the Fig 7.11 generator: evaluate the query
// workload on indexes of 1..11 states and compute 1−RelRecall.
func BenchmarkRecallSweep(b *testing.B) {
	graphs := benchGraphs(b, core.Options{UseHotNode: true})
	qs := webapp.Queries()[:20]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var counts [12][]int
		for k := 1; k <= 11; k += 5 {
			eng := query.NewEngine(index.Build(graphs, nil, k))
			counts[k] = make([]int, len(qs))
			for qi, q := range qs {
				counts[k][qi] = len(eng.Search(q))
			}
		}
		_ = counts
	}
}

// benchServeServer builds a serving-layer query server over the bench
// corpus with the given result-cache capacity.
func benchServeServer(b *testing.B, cacheCapacity int) *query.Server {
	b.Helper()
	graphs := benchGraphs(b, core.Options{UseHotNode: true})
	texts := make(map[string][]string, len(graphs))
	for _, g := range graphs {
		for _, st := range g.States {
			texts[g.URL] = append(texts[g.URL], st.Text)
		}
	}
	snap := &query.ServeSnapshot{
		Broker: query.NewBroker([]*index.Index{index.Build(graphs, nil, 0)}),
		StateText: func(url string, state int) string {
			if ts := texts[url]; state < len(ts) {
				return ts[state]
			}
			return ""
		},
	}
	return query.NewServer(snap, query.CacheOptions{Shards: 8, Capacity: cacheCapacity})
}

// BenchmarkServeQueryCached / Uncached are the serving layer's pair: the
// same top-k query answered from the result cache versus re-evaluated
// (posting-list merge + ranking + snippets) on every request. The gap is
// what the cache buys a repeated-query workload.
func BenchmarkServeQueryCached(b *testing.B) {
	srv := benchServeServer(b, 1024)
	ctx := context.Background()
	srv.Search(ctx, "funny dance", 10) // warm the entry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, cached := srv.Search(ctx, "funny dance", 10); !cached {
			b.Fatal("expected a cache hit")
		}
	}
}

// BenchmarkServeQueryUncached clears the cache every iteration, so each
// request pays the full evaluation path.
func BenchmarkServeQueryUncached(b *testing.B) {
	srv := benchServeServer(b, 1024)
	ctx := context.Background()
	gen := srv.Live().Gen
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Cache().Invalidate(gen)
		if _, _, cached := srv.Search(ctx, "funny dance", 10); cached {
			b.Fatal("expected a cache miss")
		}
	}
}

// BenchmarkReconstruct measures result aggregation (§5.4): replaying the
// event path to rebuild a deep state's DOM.
func BenchmarkReconstruct(b *testing.B) {
	s := benchSite()
	f := NewHandlerFetcher(s.Handler())
	c := core.New(f, core.Options{UseHotNode: true})
	var g *model.Graph
	for i := 0; i < s.NumVideos(); i++ {
		gg, _, err := c.CrawlPage(context.Background(), webapp.WatchURL(s.VideoID(i)))
		if err != nil {
			b.Fatal(err)
		}
		if gg.NumStates() >= 3 {
			g = gg
			break
		}
	}
	if g == nil {
		b.Skip("no multi-state video in bench corpus")
	}
	target := g.States[g.NumStates()-1]
	path := g.PathTo(target.ID)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ReplayPath(context.Background(), f, g.URL, path); err != nil {
			b.Fatal(err)
		}
	}
}
