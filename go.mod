module ajaxcrawl

go 1.23
