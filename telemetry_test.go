package ajaxcrawl

import (
	"context"
	"path/filepath"
	"testing"

	"ajaxcrawl/internal/obs"
)

// TestPipelineTraceCoversEveryUnit runs the full pipeline — precrawl,
// parallel crawl, indexing, query — with a JSONL trace sink on the
// context and checks the trace file is parseable and covers every unit
// of work the observability layer promises: page, event, XHR, partition,
// index build, and query execution.
func TestPipelineTraceCoversEveryUnit(t *testing.T) {
	site := NewSimSite(12, 3)
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	sink, err := obs.NewFileSink(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.With(context.Background(), obs.New(reg, sink))

	eng, err := BuildEngine(ctx, Config{
		Fetcher:       NewHandlerFetcher(site.Handler()),
		StartURL:      site.VideoURL(0),
		MaxPages:      6,
		PartitionSize: 3,
		ProcLines:     2,
		Crawl:         CrawlOptions{UseHotNode: true, MaxStates: 3},
		KeepURL:       IsWatchURL,
	})
	if err != nil {
		t.Fatal(err)
	}
	results := eng.SearchCtx(ctx, site.VideoTitle(0))
	if len(results) == 0 {
		t.Fatalf("no results for %q", site.VideoTitle(0))
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := obs.ReadJSONL(tracePath)
	if err != nil {
		t.Fatalf("trace file not parseable: %v", err)
	}
	seen := make(map[string]int)
	for _, r := range recs {
		seen[r.Name]++
	}
	for _, unit := range []string{
		obs.SpanPageCrawl,
		obs.SpanEventDispatch,
		obs.SpanXHRSend,
		obs.SpanLineCrawl,
		obs.SpanIndexBuild,
		obs.SpanQueryExec,
	} {
		if seen[unit] == 0 {
			t.Errorf("trace has no %s spans (units seen: %v)", unit, seen)
		}
	}
	if seen[obs.SpanLineCrawl] != 2 {
		t.Errorf("line.crawl spans = %d, want 2", seen[obs.SpanLineCrawl])
	}

	// The registry saw the same run: its summary counters must agree
	// with the engine's crawl metrics.
	snap := reg.Snapshot()
	if got, want := snap.Counters["crawl.page.states"], int64(eng.Metrics.States); got != want {
		t.Errorf("registry crawl.page.states = %d, want %d", got, want)
	}
	if snap.Counters["query.count"] != 1 {
		t.Errorf("query.count = %d, want 1", snap.Counters["query.count"])
	}
	if snap.Histograms["query.latency"].Count != 1 {
		t.Errorf("query.latency count = %d, want 1", snap.Histograms["query.latency"].Count)
	}
}
