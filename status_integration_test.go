package ajaxcrawl

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/obs"
)

// slowFetcher adds a fixed wall-clock delay per request, so a crawl of a
// small site stays observable long enough to poll mid-flight.
type slowFetcher struct {
	inner Fetcher
	delay time.Duration
}

func (f slowFetcher) Fetch(ctx context.Context, rawurl string) (*fetch.Response, error) {
	select {
	case <-time.After(f.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return f.inner.Fetch(ctx, rawurl)
}

// TestStatusEndpointDuringLiveCrawl runs the full pipeline against a
// slowed-down fetcher while polling /debug/status, and checks the
// endpoint reports genuine mid-crawl progress (0 < done < total, a
// frontier series from the sampler) and then completion.
func TestStatusEndpointDuringLiveCrawl(t *testing.T) {
	site := NewSimSite(16, 3)
	reg := obs.NewRegistry()
	tel := obs.New(reg, obs.NewRingSink(0))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ctx = obs.With(ctx, tel)

	sampler := obs.NewSampler(reg, obs.SamplerConfig{NoRuntime: true})
	go sampler.Run(ctx, 5*time.Millisecond)

	mux := http.NewServeMux()
	obs.RegisterStatus(mux, obs.StatusSource{Reg: reg, Sampler: sampler, StartedAt: time.Now()})
	poll := func() obs.Status {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/status", nil))
		var st obs.Status
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatalf("status JSON: %v\n%s", err, rec.Body.String())
		}
		return st
	}

	done := make(chan error, 1)
	go func() {
		_, err := BuildEngine(ctx, Config{
			Fetcher:       slowFetcher{inner: NewHandlerFetcher(site.Handler()), delay: 10 * time.Millisecond},
			StartURL:      site.VideoURL(0),
			MaxPages:      10,
			PartitionSize: 5,
			ProcLines:     2,
			Crawl:         CrawlOptions{UseHotNode: true, MaxStates: 3},
			KeepURL:       IsWatchURL,
		})
		done <- err
	}()

	// Poll until we catch the crawl mid-flight: some pages retired, some
	// still to go. The slow fetcher stretches the crawl well past the
	// polling cadence, so missing the window means the endpoint lies.
	var mid obs.Status
	caught := false
	for !caught {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("crawl: %v", err)
			}
			t.Fatal("crawl finished before /debug/status ever showed partial progress")
		case <-time.After(time.Millisecond):
			mid = poll()
			caught = mid.PagesDone > 0 && mid.PagesDone < mid.PagesTotal
		}
	}
	if mid.PagesTotal != 10 {
		t.Errorf("mid-crawl pages_total = %d, want 10", mid.PagesTotal)
	}
	if mid.Done {
		t.Error("mid-crawl status claims done")
	}
	if mid.ElapsedSec <= 0 {
		t.Errorf("mid-crawl elapsed = %v, want > 0", mid.ElapsedSec)
	}
	if mid.PagesPerSec <= 0 || mid.ETASec < 0 {
		t.Errorf("mid-crawl rate/eta = %v/%v, want live estimates", mid.PagesPerSec, mid.ETASec)
	}

	if err := <-done; err != nil {
		t.Fatalf("crawl: %v", err)
	}
	sampler.Sample() // one final point, so the series reflects completion
	final := poll()
	if final.PagesDone != 10 || !final.Done {
		t.Fatalf("final status = %d/%d done=%v, want 10/10 done", final.PagesDone, final.PagesTotal, final.Done)
	}
	// The sampler charted the crawl: the default gauge series exist and
	// the pages.done series reached the final count.
	series := map[string][]obs.Point{}
	for _, s := range final.Series {
		series[s.Name] = s.Points
	}
	if len(series[obs.MetricFrontierDepth]) == 0 {
		t.Error("no frontier.depth series sampled")
	}
	pd := series[obs.MetricPagesDone]
	if len(pd) == 0 || pd[len(pd)-1].V != 10 {
		t.Errorf("crawl.pages.done series = %v, want to end at 10", pd)
	}

	// The HTML view renders the same numbers.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/status?format=html", nil))
	if body := rec.Body.String(); !strings.Contains(body, "10 / 10") {
		t.Errorf("HTML status missing final progress:\n%s", body)
	}
}
