// Parallel crawling: the chapter-6 architecture end to end. The URL
// frontier from the precrawl is partitioned on disk; N independent
// "process lines" crawl partitions concurrently; each partition becomes
// an index shard; queries are shipped to every shard and merged with the
// global-idf correction.
//
//	go run ./examples/parallel
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"ajaxcrawl"
	"ajaxcrawl/internal/core"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/webapp"
)

func main() {
	ctx := context.Background()
	site := webapp.New(webapp.DefaultConfig(80, 5))
	// Simulated per-request network latency makes the parallelism
	// visible: process lines overlap their waiting time.
	const latency = 3 * time.Millisecond
	newFetcher := func() fetch.Fetcher {
		return fetch.NewInstrumented(
			&fetch.HandlerFetcher{Handler: site.Handler()}, fetch.RealClock{}, latency, 0)
	}

	// Precrawl the frontier once.
	pre := &core.Precrawler{
		Fetcher:  newFetcher(),
		StartURL: webapp.WatchURL(site.VideoID(0)),
		MaxPages: 60,
		KeepURL:  ajaxcrawl.IsWatchURL,
	}
	preRes, err := pre.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("precrawled %d pages; PageRank computed over the hyperlink graph\n", len(preRes.URLs))

	run := func(lines int) time.Duration {
		dir, err := os.MkdirTemp("", "parallel-example-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		parts, err := (&core.URLPartitioner{PartitionSize: 5, RootDir: dir}).Partition(preRes.URLs)
		if err != nil {
			log.Fatal(err)
		}
		mp := &core.MPCrawler{
			NewCrawler: func() *core.Crawler {
				return core.New(newFetcher(), core.Options{UseHotNode: true})
			},
			ProcLines:  lines,
			Partitions: parts,
		}
		start := time.Now()
		res := mp.Run(ctx)
		elapsed := time.Since(start)
		if err := res.Err(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d process line(s): %d pages, %d states in %v\n",
			lines, res.Metrics.Pages, res.Metrics.States, elapsed.Round(time.Millisecond))
		return elapsed
	}

	serial := run(1)
	parallel := run(4)
	fmt.Printf("parallel speedup: %.2fx (%0.1f%% lower crawl time)\n",
		float64(serial)/float64(parallel), 100*(1-float64(parallel)/float64(serial)))
	fmt.Println("(the thesis reports 25-28% lower crawl times with 4 process lines)")
}
