// Repetitive crawling: the thesis's chapter-10 future-work direction,
// implemented. The first crawl session records which events were
// productive; later sessions skip events that provably did nothing,
// cutting the recurring cost of keeping an AJAX index fresh.
//
// To make the effect visible, this example wraps the synthetic site so
// every watch page carries extra decorative events whose handlers never
// change the DOM — the "very granular events" problem of thesis §3.2.
//
//	go run ./examples/recrawl
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"strings"

	"ajaxcrawl/internal/core"
	"ajaxcrawl/internal/fetch"
	"ajaxcrawl/internal/webapp"
)

// noisyHandler injects decorative no-op events into every watch page:
// hover trackers, analytics pings — handlers that run but change nothing.
func noisyHandler(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &recorder{header: make(http.Header)}
		inner.ServeHTTP(rec, r)
		body := rec.body.String()
		if strings.HasPrefix(r.URL.Path, "/watch") {
			noise := `<div id="adbar">
<span onclick="urchinTracker('ad1')">sponsored</span>
<span onclick="urchinTracker('ad2')">links</span>
<span onmouseover="urchinTracker('hover1')">hover me</span>
<span onmouseover="urchinTracker('hover2')">and me</span>
<span onclick="var tmp = 1 + 1;">inert</span>
</div></body>`
			body = strings.Replace(body, "</body>", noise, 1)
		}
		for k, vs := range rec.header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.status())
		w.Write([]byte(body)) //nolint:errcheck
	})
}

type recorder struct {
	header http.Header
	code   int
	body   strings.Builder
}

func (r *recorder) Header() http.Header { return r.header }
func (r *recorder) WriteHeader(c int)   { r.code = c }
func (r *recorder) Write(b []byte) (int, error) {
	return r.body.Write(b)
}
func (r *recorder) status() int {
	if r.code == 0 {
		return 200
	}
	return r.code
}

func main() {
	ctx := context.Background()
	site := webapp.New(webapp.DefaultConfig(40, 11))
	fetcher := &fetch.HandlerFetcher{Handler: noisyHandler(site.Handler())}

	var urls []string
	for i := 0; i < 25; i++ {
		urls = append(urls, webapp.WatchURL(site.VideoID(i)))
	}

	// Session 1: full crawl, recording the event profile.
	profile := core.NewCrawlProfile()
	session1 := core.New(fetcher, core.Options{UseHotNode: true, RecordProfile: profile})
	graphs1, m1, err := session1.CrawlAll(ctx, urls)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 1: %d states, %d events triggered (%d did nothing)\n",
		m1.States, m1.EventsTriggered, countNoChange(profile))

	// Session 2: same site, guided by the profile.
	session2 := core.New(fetcher, core.Options{UseHotNode: true, PriorProfile: profile})
	graphs2, m2, err := session2.CrawlAll(ctx, urls)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 2: %d states, %d events triggered, %d skipped by profile\n",
		m2.States, m2.EventsTriggered, m2.EventsSkipped)

	// The model must be unchanged: skipping only removed dead work.
	for i := range graphs1 {
		if graphs1[i].NumStates() != graphs2[i].NumStates() {
			log.Fatalf("model diverged on %s", graphs1[i].URL)
		}
	}
	saved := 100 * (1 - float64(m2.EventsTriggered)/float64(m1.EventsTriggered))
	fmt.Printf("\nidentical application models, %.0f%% fewer event invocations on re-crawl\n", saved)
}

func countNoChange(cp *core.CrawlProfile) int {
	n := 0
	for _, pp := range cp.Pages {
		for _, outcome := range pp.Events {
			if outcome == core.OutcomeNoChange {
				n++
			}
		}
	}
	return n
}
