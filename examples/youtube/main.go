// YouTube-comments scenario: the paper's motivating example (§1.1) at
// repository scale. A video's comments continue across AJAX-loaded pages;
// traditional search only sees the first page, so queries matching later
// comments return false negatives. AJAX search indexes every state.
//
//	go run ./examples/youtube
package main

import (
	"context"
	"fmt"
	"log"

	"ajaxcrawl"
)

func main() {
	ctx := context.Background()
	site := ajaxcrawl.NewSimSite(120, 99)
	fetcher := ajaxcrawl.NewHandlerFetcher(site.Handler())

	// Crawl the same 60 videos twice: once as a traditional crawler
	// (JavaScript off — only the default first comment page is visible)
	// and once as the AJAX crawler.
	crawl := func(opts ajaxcrawl.CrawlOptions) *ajaxcrawl.Engine {
		c := ajaxcrawl.NewCrawler(fetcher, opts)
		var graphs []*ajaxcrawl.Graph
		for i := 0; i < 60; i++ {
			g, _, err := c.CrawlPage(ctx, site.VideoURL(i))
			if err != nil {
				log.Fatal(err)
			}
			graphs = append(graphs, g)
		}
		return ajaxcrawl.NewEngineFromGraphs(fetcher, graphs, nil)
	}
	trad := crawl(ajaxcrawl.CrawlOptions{Traditional: true})
	ajax := crawl(ajaxcrawl.CrawlOptions{UseHotNode: true})

	fmt.Printf("traditional index: %d states | AJAX index: %d states\n\n",
		trad.NumStates(), ajax.NumStates())

	// Run the popular-query workload on both and compare recall — the
	// paper's "improvement in search quality" (§7.7).
	fmt.Printf("%-18s %12s %12s %10s\n", "query", "traditional", "AJAX", "gain")
	tradTotal, ajaxTotal := 0, 0
	for _, q := range site.Queries()[:11] {
		t, a := len(trad.Search(q)), len(ajax.Search(q))
		tradTotal += t
		ajaxTotal += a
		gain := "-"
		if t > 0 {
			gain = fmt.Sprintf("%.1fx", float64(a)/float64(t))
		} else if a > 0 {
			gain = "∞ (false negative fixed)"
		}
		fmt.Printf("%-18s %12d %12d %10s\n", q, t, a, gain)
	}
	fmt.Printf("%-18s %12d %12d %9.1fx\n", "TOTAL", tradTotal, ajaxTotal,
		float64(ajaxTotal)/float64(max(1, tradTotal)))

	// Show one concrete rescue: a query whose only hits are on later
	// comment pages (state > 0) — invisible to traditional search.
	for _, q := range site.Queries() {
		if len(trad.Search(q)) != 0 {
			continue
		}
		rs := ajax.Search(q)
		if len(rs) == 0 {
			continue
		}
		fmt.Printf("\nfalse negative fixed: %q has no traditional hits, but AJAX search finds\n", q)
		for _, r := range ajaxcrawl.TopKResults(rs, 3) {
			fmt.Printf("  %s  on comment page %d\n", r.URL, r.State+1)
		}
		return
	}
	fmt.Println("\n(no fully-rescued query in this sample; AJAX still multiplied recall)")
}
