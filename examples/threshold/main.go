// Crawling-threshold tuning: how many AJAX states are worth crawling?
// The paper's §7.6–7.7 tradeoff at example scale: every additional state
// improves recall (with diminishing returns) but slows queries down. This
// example sweeps the per-page state limit from 1 (traditional) to 11 and
// prints the recall/throughput frontier, picking the threshold the same
// way the paper does.
//
//	go run ./examples/threshold
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ajaxcrawl"
)

func main() {
	ctx := context.Background()
	site := ajaxcrawl.NewSimSite(100, 77)
	fetcher := ajaxcrawl.NewHandlerFetcher(site.Handler())

	// Crawl once with the full state budget; indexes for smaller limits
	// are carved out of the same application models.
	c := ajaxcrawl.NewCrawler(fetcher, ajaxcrawl.CrawlOptions{UseHotNode: true})
	var graphs []*ajaxcrawl.Graph
	for i := 0; i < 60; i++ {
		g, _, err := c.CrawlPage(ctx, site.VideoURL(i))
		if err != nil {
			log.Fatal(err)
		}
		graphs = append(graphs, g)
	}

	queries := site.Queries()
	type point struct {
		states    int
		results   int
		queryTime time.Duration
	}
	var frontier []point
	var baseResults int
	for limit := 1; limit <= 11; limit++ {
		eng := ajaxcrawl.NewEngineFromGraphsLimited(fetcher, graphs, nil, limit)
		total := 0
		start := time.Now()
		for _, q := range queries {
			total += len(eng.Search(q))
		}
		elapsed := time.Since(start)
		if limit == 1 {
			baseResults = total
		}
		frontier = append(frontier, point{limit, total, elapsed})
	}

	fmt.Printf("%-8s %-10s %-14s %-14s\n", "states", "results", "recall gain", "query time")
	for _, p := range frontier {
		fmt.Printf("%-8d %-10d %-14.2fx %-14v\n",
			p.states, p.results, float64(p.results)/float64(baseResults),
			p.queryTime.Round(time.Microsecond))
	}

	// Pick the threshold: the first limit where the marginal recall gain
	// of one more state drops below 5%.
	pick := len(frontier)
	for i := 1; i < len(frontier); i++ {
		gain := float64(frontier[i].results-frontier[i-1].results) / float64(frontier[i-1].results)
		if gain < 0.05 {
			pick = frontier[i-1].states
			break
		}
	}
	fmt.Printf("\nsuggested crawl threshold: %d states per page\n", pick)
	fmt.Println("(the paper reaches ~0.7 of the recall gain by 4-5 states; beyond that,")
	fmt.Println(" extra states cost query throughput for little additional recall)")
}
