// A second application shape: the crawler on a news site whose articles
// carry expandable sections. Unlike the YouTube comment box (a linear
// chain of states), expanding sections in any order forms a lattice of
// states with two distinct hot-node functions — the crawler handles both
// without any site-specific code.
//
//	go run ./examples/newsapp
package main

import (
	"context"
	"fmt"
	"log"

	"ajaxcrawl"
)

func main() {
	ctx := context.Background()
	news := ajaxcrawl.NewNewsSite(12, 3)
	eng, err := ajaxcrawl.BuildEngine(ctx, ajaxcrawl.Config{
		Fetcher:  ajaxcrawl.NewHandlerFetcher(news.Handler()),
		StartURL: news.ArticleURL(0),
		MaxPages: 10,
		Crawl:    ajaxcrawl.CrawlOptions{UseHotNode: true, MaxStates: 16},
	})
	if err != nil {
		log.Fatal(err)
	}
	m := eng.Metrics
	fmt.Printf("crawled %d articles into %d states (lattices of expanded sections)\n",
		m.Pages, m.States)
	fmt.Printf("events: %d triggered, %d needed the network\n", m.EventsTriggered, m.NetworkEvents)

	// Content behind "Read section" clicks is searchable.
	found := 0
	for _, q := range []string{"wow", "dance", "funny", "kiss", "music"} {
		rs := eng.SearchWithSnippets(q, 1)
		if len(rs) == 0 {
			continue
		}
		found++
		fmt.Printf("\n%q -> %s (state %d)\n  %s\n", q, rs[0].URL, rs[0].State, rs[0].Snippet)
	}
	if found == 0 {
		log.Fatal("no hidden-section content found")
	}
}
