// Form crawling: the "address forms in AJAX applications" future-work
// item of thesis chapter 10, in the spirit of its Deep-Web discussion.
// Watch pages carry a Google-Suggest-style search box: typing a prefix
// fires an XMLHttpRequest that fills a suggestions list. The crawler
// probes the box with dictionary prefixes and indexes the resulting
// states, making content reachable only through user input searchable.
//
//	go run ./examples/forms
package main

import (
	"context"
	"fmt"
	"log"

	"ajaxcrawl"
)

func main() {
	ctx := context.Background()
	site := ajaxcrawl.NewSimSiteWithForms(30, 21)
	fetcher := ajaxcrawl.NewHandlerFetcher(site.Handler())

	crawl := func(probes []string) *ajaxcrawl.Engine {
		c := ajaxcrawl.NewCrawler(fetcher, ajaxcrawl.CrawlOptions{
			UseHotNode: true,
			MaxStates:  25,
			FormProbes: probes,
		})
		var graphs []*ajaxcrawl.Graph
		for i := 0; i < 15; i++ {
			g, _, err := c.CrawlPage(ctx, site.VideoURL(i))
			if err != nil {
				log.Fatal(err)
			}
			graphs = append(graphs, g)
		}
		return ajaxcrawl.NewEngineFromGraphs(fetcher, graphs, nil)
	}

	noForms := crawl(nil)
	withForms := crawl([]string{"wo", "am", "ch", "fu"})
	fmt.Printf("without form probing: %d states indexed\n", noForms.NumStates())
	fmt.Printf("with form probing:    %d states indexed\n", withForms.NumStates())

	// "american idol" appears in the suggestion list for prefix "am";
	// only the probing crawler surfaces those suggestion states.
	rs := withForms.Search("american idol")
	rsPlain := noForms.Search("american idol")
	fmt.Printf("\nquery \"american idol\":\n")
	fmt.Printf("  with probing:    %d hits (comments + suggestion states)\n", len(rs))
	fmt.Printf("  without probing: %d hits (comment text only)\n", len(rsPlain))
	if len(rs) <= len(rsPlain) {
		log.Fatal("form probing surfaced nothing new")
	}
}
