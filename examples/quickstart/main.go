// Quickstart: crawl a small synthetic AJAX site, search it, and
// reconstruct a result state — the whole library in ~40 lines.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"ajaxcrawl"
)

func main() {
	ctx := context.Background()
	// A deterministic synthetic YouTube-like site: watch pages whose
	// comment pagination loads via XMLHttpRequest.
	site := ajaxcrawl.NewSimSite(60, 7)

	// Build the full search engine: precrawl + PageRank, partitioning,
	// parallel AJAX crawling with the hot-node cache, sharded indexing.
	eng, err := ajaxcrawl.BuildEngine(ctx, ajaxcrawl.Config{
		Fetcher:  ajaxcrawl.NewHandlerFetcher(site.Handler()),
		StartURL: site.VideoURL(0),
		MaxPages: 30,
		KeepURL:  ajaxcrawl.IsWatchURL,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := eng.Metrics
	fmt.Printf("crawled %d pages into %d application states\n", m.Pages, m.States)
	fmt.Printf("events triggered: %d, of which only %d needed the network (hot-node cache)\n",
		m.EventsTriggered, m.NetworkEvents)

	// Search. Results are (URL, state) pairs: the state names the exact
	// comment page the terms occur on.
	const q = "wow"
	results := eng.SearchTopK(q, 5)
	fmt.Printf("\ntop results for %q:\n", q)
	for i, r := range results {
		fmt.Printf("%d. %s  state=%d  score=%.3f\n", i+1, r.URL, r.State, r.Score)
	}
	if len(results) == 0 {
		log.Fatal("no results — unexpected for the most popular planted query")
	}

	// Reconstruct the top result's state by replaying its event path,
	// as the result-aggregation phase does for the user.
	html, err := eng.Reconstruct(ctx, results[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreconstructed state is %d bytes of HTML; contains %q: %v\n",
		len(html), q, strings.Contains(strings.ToLower(html), q))
}
